"""Time travel over the wire: per-query ``as_of`` pins and SQL AS OF.

Two tenants share one EngineContext; one pins a retained generation and
keeps getting the frozen answer while the other rides the live file as it
grows. Unknown generations surface as a typed ``generation`` error envelope,
malformed pins as ``protocol``, and quotas apply to pinned queries too.
"""

import asyncio
import json

import pytest

from repro import EngineContext, ViDa
from repro.server import TenantQuota, ViDaServer

ROWS = 2000
SUM_Q = "for { t <- T } yield sum t.v"


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "t.csv"
    with open(path, "w") as fh:
        fh.write("id,v\n")
        for i in range(ROWS):
            fh.write(f"{i},{i * 3}\n")
    return str(path)


def append_rows(csv_path, start, count):
    with open(csv_path, "a") as fh:
        for i in range(start, start + count):
            fh.write(f"{i},{i * 3}\n")


def file_sum(csv_path):
    with open(csv_path) as fh:
        next(fh)
        return sum(int(line.split(",")[1]) for line in fh)


async def send(writer, payload: dict) -> None:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def recv(reader) -> dict:
    line = await asyncio.wait_for(reader.readline(), timeout=30)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def request(host, port, payload: dict) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await send(writer, payload)
        return await recv(reader)
    finally:
        writer.close()


def run(coro):
    return asyncio.run(coro)


def make_server(csv_path, **kwargs):
    async def setup():
        ctx = EngineContext()
        bootstrap = ViDa(context=ctx)
        bootstrap.register_csv("T", csv_path)
        base_gen = bootstrap.generations("T")["live"]
        bootstrap.close()
        server = ViDaServer(context=ctx, **kwargs)
        await server.start()
        return server, base_gen

    return setup


# ---------------------------------------------------------------------------
# two tenants: one pinned and frozen, one riding the live file
# ---------------------------------------------------------------------------


def test_pinned_tenant_frozen_while_other_sees_latest(csv_path):
    base_sum = file_sum(csv_path)

    async def scenario():
        server, base_gen = await make_server(csv_path)()
        host, port = server.address
        sql_pin = ("SELECT SUM(v) AS s FROM T "
                   f"AS OF GENERATION {base_gen}")
        try:
            # two persistent tenant connections over the one EngineContext
            ra, wa = await asyncio.open_connection(host, port)
            rb, wb = await asyncio.open_connection(host, port)

            await send(wa, {"id": 1, "q": SUM_Q})
            first = await recv(ra)

            answers = []
            for round_no in range(2):
                append_rows(csv_path, ROWS + 50 * round_no, 50)
                live_sum = file_sum(csv_path)
                # fire the pinned and the live query concurrently
                await asyncio.gather(
                    send(wa, {"id": 10 + round_no, "q": SUM_Q,
                              "as_of": {"T": base_gen}}),
                    send(wb, {"id": 20 + round_no, "q": SUM_Q}),
                )
                pinned, latest = await asyncio.gather(recv(ra), recv(rb))
                sql_pinned = await request(host, port, {"sql": sql_pin})
                answers.append((pinned, latest, sql_pinned, live_sum))
            wa.close()
            wb.close()
        finally:
            await server.stop()
        return first, answers

    first, answers = run(scenario())
    assert first["ok"] and first["rows"] == [base_sum]
    for pinned, latest, sql_pinned, live_sum in answers:
        assert pinned["ok"], pinned
        assert pinned["rows"] == [base_sum]  # frozen at the base generation
        assert latest["ok"], latest
        assert latest["rows"] == [live_sum]  # tracks the growing file
        assert sql_pinned["ok"], sql_pinned
        assert sql_pinned["rows"] == [base_sum]  # SQL AS OF agrees
    assert answers[0][3] != base_sum  # the file really did move on


# ---------------------------------------------------------------------------
# typed error envelopes
# ---------------------------------------------------------------------------


def test_unknown_generation_is_typed_generation_error(csv_path):
    async def scenario():
        server, _ = await make_server(csv_path)()
        host, port = server.address
        try:
            dict_pin = await request(
                host, port, {"id": 1, "q": SUM_Q, "as_of": {"T": 99}})
            sql_pin = await request(
                host, port,
                {"id": 2, "sql": "SELECT SUM(v) AS s FROM T "
                                 "AS OF GENERATION 99"})
            ok = await request(host, port, {"id": 3, "q": SUM_Q})
        finally:
            await server.stop()
        return dict_pin, sql_pin, ok

    dict_pin, sql_pin, ok = run(scenario())
    for resp in (dict_pin, sql_pin):
        assert resp["ok"] is False
        assert resp["error"]["type"] == "generation"
        assert "99" in resp["error"]["message"]
    assert ok["ok"]  # the connection and tenant survive the error


def test_malformed_as_of_is_protocol_error(csv_path):
    async def scenario():
        server, _ = await make_server(csv_path)()
        host, port = server.address
        try:
            responses = []
            for bad in ("1", [["T", 1]], {"T": "one"}, {"T": True}):
                responses.append(await request(
                    host, port, {"id": 1, "q": SUM_Q, "as_of": bad}))
        finally:
            await server.stop()
        return responses

    for resp in run(scenario()):
        assert resp["ok"] is False
        assert resp["error"]["type"] == "protocol"


def test_quota_applies_to_pinned_queries(csv_path):
    async def scenario():
        server, _ = await make_server(
            csv_path, quota=TenantQuota(max_inflight=0))()
        host, port = server.address
        try:
            return await request(
                host, port, {"id": 1, "q": SUM_Q, "as_of": {"T": 1}})
        finally:
            await server.stop()

    resp = run(scenario())
    assert resp["ok"] is False
    assert resp["error"]["type"] == "quota"
