"""Pretty-printer round-trip tests (including hypothesis-generated ASTs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcc import ast as A
from repro.mcc.monoids import get_monoid
from repro.mcc.parser import parse
from repro.mcc.pretty import pretty

ROUND_TRIP_QUERIES = [
    "for { x <- S } yield sum x.a",
    'for { e <- E, d <- D, e.k = d.k, d.n = "HR" } yield sum 1',
    "for { x <- S, x.a > 3, x.b <= 2 } yield bag (a := x.a, b := x.b + 1)",
    "for { x <- S } yield set (k := for { y <- T } yield bag y.v)",
    "if a > 1 then 2 else 3",
    "1 + 2 * 3 - 4 / 5",
    "not (a and b or c)",
    "x.a.b.c",
    "m[1, 2]",
    '[1, 2, 3]',
    "for { x <- S, v := x.a } yield max v",
    "for { x <- S } yield topk(5) x.score",
    'x like "A_%"',
    "lower(x.name)",
    "-x.a",
]


@pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
def test_round_trip(text):
    ast1 = parse(text)
    ast2 = parse(pretty(ast1))
    assert ast1 == ast2


# -- hypothesis: random expression trees round-trip ------------------------

_names = st.sampled_from(["x", "y", "S", "T", "abc"])
_fields = st.sampled_from(["a", "b", "val"])


def _exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=999).map(A.Const),
        st.booleans().map(A.Const),
        st.text(alphabet="abcxyz ", min_size=0, max_size=6).map(A.Const),
        _names.map(A.Var),
        st.just(A.Null()),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, _fields).map(lambda t: A.Proj(t[0], t[1])),
            st.tuples(children, children).map(lambda t: A.BinOp("+", t[0], t[1])),
            st.tuples(children, children).map(lambda t: A.BinOp("and",
                A.BinOp("=", t[0], t[1]), A.Const(True))),
            st.tuples(children, children, children).map(
                lambda t: A.If(A.BinOp("=", t[0], t[1]), t[2], A.Const(0))),
            st.lists(st.tuples(_fields, children), min_size=1, max_size=3,
                     unique_by=lambda p: p[0]).map(
                lambda fs: A.RecordCons(tuple(fs))),
            st.tuples(_names, children, children).map(
                lambda t: A.Comprehension(
                    get_monoid("bag"), t[2], (A.Generator(t[0], t[1]),))),
        )

    return st.recursive(leaves, extend, max_leaves=12)


@given(_exprs())
@settings(max_examples=150, deadline=None)
def test_round_trip_random(expr):
    text = pretty(expr)
    assert parse(text) == expr
