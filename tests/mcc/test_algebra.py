"""Algebra node and explain-rendering tests."""

from repro.mcc import ast as A
from repro.mcc.algebra import (
    ExprScanOp,
    JoinOp,
    NestOp,
    OuterJoinOp,
    OuterUnnestOp,
    ReduceOp,
    ScanOp,
    SelectOp,
    UnnestOp,
    explain,
)
from repro.mcc.monoids import get_monoid


def test_bound_vars_compose():
    scan_a = ScanOp("S", "a")
    scan_b = ScanOp("T", "b")
    join = JoinOp(scan_a, scan_b, A.Const(True))
    assert join.bound_vars() == ("a", "b")
    unnest = UnnestOp(join, A.Proj(A.Var("a"), "xs"), "x")
    assert unnest.bound_vars() == ("a", "b", "x")
    outer = OuterUnnestOp(unnest, A.Proj(A.Var("b"), "ys"), "y")
    assert outer.bound_vars() == ("a", "b", "x", "y")


def test_nest_binds_only_group_var():
    nest = NestOp(
        ScanOp("S", "s"),
        keys=(("k", A.Proj(A.Var("s"), "k")),),
        monoid=get_monoid("sum"),
        head=A.Proj(A.Var("s"), "v"),
        group_var="g",
    )
    assert nest.bound_vars() == ("g",)


def test_explain_all_operators():
    plan = ReduceOp(
        SelectOp(
            OuterJoinOp(
                UnnestOp(ScanOp("S", "s"), A.Proj(A.Var("s"), "xs"), "x"),
                ExprScanOp(A.ListLit((A.Const(1),)), "e"),
                A.Const(True),
            ),
            A.BinOp(">", A.Proj(A.Var("x"), "v"), A.Const(0)),
        ),
        get_monoid("bag"),
        A.Var("x"),
    )
    text = explain(plan)
    for fragment in ("Reduce", "Select", "OuterJoin", "Unnest", "Scan(S as s)",
                     "ExprScan"):
        assert fragment in text


def test_explain_nest():
    nest = NestOp(
        ScanOp("S", "s"),
        keys=(("k", A.Proj(A.Var("s"), "k")),),
        monoid=get_monoid("avg"),
        head=A.Proj(A.Var("s"), "v"),
        group_var="g",
    )
    text = explain(ReduceOp(nest, get_monoid("bag"), A.Var("g")))
    assert "Nest[k=s.k; avg s.v as g]" in text


def test_ast_helpers():
    e = A.BinOp("and", A.BinOp(">", A.Var("a"), A.Const(1)),
                A.BinOp("and", A.Var("p"), A.Var("q")))
    parts = A.conjuncts(e)
    assert len(parts) == 3
    rebuilt = A.make_conjunction(parts)
    assert A.conjuncts(rebuilt) == parts
    assert A.make_conjunction([]) == A.Const(True)


def test_free_vars_through_nested_structures():
    e = A.Comprehension(
        get_monoid("bag"),
        A.BinOp("+", A.Var("x"), A.Var("outer")),
        (A.Generator("x", A.Var("S")),
         A.Filter(A.BinOp("=", A.Proj(A.Var("x"), "k"), A.Var("key")))),
    )
    assert A.free_vars(e) == {"S", "outer", "key"}


def test_substitute_shadowing():
    comp = A.Comprehension(
        get_monoid("sum"), A.Var("v"),
        (A.Generator("v", A.Var("S")),),
    )
    # v is bound by the generator; substitution must not touch the head
    out = A.substitute(comp, "v", A.Const(99))
    assert out.head == A.Var("v")


def test_substitute_capture_avoidance():
    # substituting an expression mentioning 'y' under a generator binding 'y'
    comp = A.Comprehension(
        get_monoid("sum"),
        A.BinOp("+", A.Var("x"), A.Var("y")),
        (A.Generator("y", A.Var("S")),),
    )
    out = A.substitute(comp, "x", A.Var("y"))
    gen = out.qualifiers[0]
    assert gen.var != "y"  # the binder was renamed
    head = out.head
    assert A.Var("y") in (head.left, head.right)  # the free y survived
