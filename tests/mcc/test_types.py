"""Type-system tests: construction, unification, inference from values."""

import pytest

from repro.mcc import types as T


def test_primitive_validation():
    with pytest.raises(ValueError):
        T.PrimitiveType("decimal")


def test_record_field_lookup():
    r = T.RecordType.of({"a": T.INT, "b": T.STRING})
    assert r.field_type("a") == T.INT
    assert r.field_type("missing") is None
    assert r.field_names() == ("a", "b")


def test_collection_kind_validation():
    with pytest.raises(ValueError):
        T.CollectionType("queue", T.INT)


def test_unify_numeric_widening():
    assert T.unify(T.INT, T.FLOAT) == T.FLOAT
    assert T.unify(T.FLOAT, T.INT) == T.FLOAT


def test_unify_null_makes_nullable():
    assert T.unify(T.NULL, T.INT) == T.INT
    assert T.unify(T.STRING, T.NULL) == T.STRING


def test_unify_any():
    assert T.unify(T.ANY, T.INT) == T.INT
    assert T.unify(T.bag_of(T.INT), T.ANY) == T.bag_of(T.INT)


def test_unify_incompatible():
    assert T.unify(T.INT, T.STRING) is None
    assert T.unify(T.bag_of(T.INT), T.INT) is None


def test_unify_collections_kind_widening():
    assert T.unify(T.list_of(T.INT), T.set_of(T.INT)) == T.bag_of(T.INT)
    assert T.unify(T.list_of(T.INT), T.list_of(T.FLOAT)) == T.list_of(T.FLOAT)


def test_unify_records_fieldwise():
    a = T.RecordType.of({"x": T.INT, "y": T.NULL})
    b = T.RecordType.of({"x": T.FLOAT, "y": T.STRING})
    u = T.unify(a, b)
    assert u.field_type("x") == T.FLOAT
    assert u.field_type("y") == T.STRING


def test_unify_records_mismatched_fields():
    a = T.RecordType.of({"x": T.INT})
    b = T.RecordType.of({"y": T.INT})
    assert T.unify(a, b) is None


def test_array_type():
    arr = T.ArrayType((T.Dim("i"), T.Dim("j")), T.FLOAT)
    assert arr.rank == 2
    assert "array" in str(arr)


def test_type_of_python_value():
    assert T.type_of_python_value(3) == T.INT
    assert T.type_of_python_value(True) == T.BOOL  # bool before int!
    assert T.type_of_python_value(None) == T.NULL
    t = T.type_of_python_value({"a": 1, "b": [1.5, 2.5]})
    assert t.field_type("a") == T.INT
    assert t.field_type("b") == T.list_of(T.FLOAT)


def test_is_numeric():
    assert T.INT.is_numeric()
    assert T.FLOAT.is_numeric()
    assert not T.STRING.is_numeric()
    assert not T.bag_of(T.INT).is_numeric()
