"""Property: normalization preserves query semantics.

Random comprehensions are evaluated with the expression interpreter before
and after the Fegaras-Maier rewrites; results must agree. This guards the
rewrite rules (especially unnesting and its monoid side-conditions) against
semantic drift.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ViDa
from repro.core.executor.runtime import QueryRuntime
from repro.core.executor.static_engine import eval_expr
from repro.mcc.normalize import normalize
from repro.mcc.parser import parse


@pytest.fixture(scope="module")
def rt():
    db = ViDa()
    db.register_memory("S", [{"a": i, "b": i % 3, "xs": [{"v": j} for j in range(i % 4)]}
                             for i in range(12)])
    db.register_memory("T", [{"k": i % 5, "w": i * 2} for i in range(10)])
    return QueryRuntime(db.catalog, db.cache)


_MONOIDS = st.sampled_from(["sum", "bag", "set", "max", "count", "avg"])
_PRED = st.sampled_from([
    "x.a > 3", "x.b = 1", "true", "x.a > 2 and x.b != 0",
    "x.a < 10 or x.b = 2",
])
_HEAD = st.sampled_from(["x.a", "x.a + x.b", "1", "x.b * 2"])


@given(monoid=_MONOIDS, pred=_PRED, head=_HEAD, use_bind=st.booleans())
@settings(max_examples=60, deadline=None)
def test_flat_comprehensions_preserved(rt, monoid, pred, head, use_bind):
    if use_bind:
        text = (f"for {{ x <- S, v := {head}, {pred} }} yield {monoid} v")
    else:
        text = f"for {{ x <- S, {pred} }} yield {monoid} {head}"
    expr = parse(text)
    before = eval_expr(expr, {}, rt)
    after = eval_expr(normalize(expr), {}, rt)
    _assert_same(before, after)


@given(
    inner_monoid=st.sampled_from(["bag", "list"]),
    outer_monoid=st.sampled_from(["sum", "bag", "count", "max"]),
    pred=st.sampled_from(["y.a > 4", "y.b = 0", "true"]),
)
@settings(max_examples=40, deadline=None)
def test_nested_generator_unnesting_preserved(rt, inner_monoid, outer_monoid,
                                              pred):
    text = (
        f"for {{ x <- (for {{ y <- S, {pred} }} yield {inner_monoid} y.a) }} "
        f"yield {outer_monoid} x"
    )
    expr = parse(text)
    before = eval_expr(expr, {}, rt)
    after = eval_expr(normalize(expr), {}, rt)
    _assert_same(before, after)


@given(pred=st.sampled_from(["y.b = 1", "y.a >= 6", "true"]))
@settings(max_examples=30, deadline=None)
def test_set_generator_dedup_preserved(rt, pred):
    """The set→bag no-unnest side condition: duplicates must not reappear."""
    text = (
        f"for {{ x <- (for {{ y <- S, {pred} }} yield set y.b) }} "
        "yield count 1"
    )
    expr = parse(text)
    before = eval_expr(expr, {}, rt)
    after = eval_expr(normalize(expr), {}, rt)
    assert before == after


@given(
    pred=st.sampled_from(["x.a > 3 and u.v >= 1", "u.v = 0", "true"]),
    monoid=st.sampled_from(["sum", "count", "bag"]),
)
@settings(max_examples=30, deadline=None)
def test_dependent_generators_preserved(rt, pred, monoid):
    text = f"for {{ x <- S, u <- x.xs, {pred} }} yield {monoid} u.v"
    expr = parse(text)
    before = eval_expr(expr, {}, rt)
    after = eval_expr(normalize(expr), {}, rt)
    _assert_same(before, after)


def _assert_same(before, after):
    if isinstance(before, list):
        assert sorted(map(repr, before)) == sorted(map(repr, after))
    elif isinstance(before, float):
        assert after == pytest.approx(before)
    else:
        assert before == after
