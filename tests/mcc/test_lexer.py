"""Tokenizer tests."""

import pytest

from repro.errors import ParseError
from repro.mcc.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "EOF"]


def test_keywords_vs_identifiers():
    toks = kinds("for yield foo iff")
    assert toks == [("KEYWORD", "for"), ("KEYWORD", "yield"),
                    ("IDENT", "foo"), ("IDENT", "iff")]


def test_numbers():
    toks = kinds("1 2.5 1e3 2.5e-2 7")
    assert [t[0] for t in toks] == ["INT", "FLOAT", "FLOAT", "FLOAT", "INT"]


def test_number_then_projection_not_float():
    # arr[0].x must not lex "0." as a float
    toks = kinds("a[0].x")
    values = [t[1] for t in toks]
    assert "0" in values and "." in values


def test_string_escapes():
    toks = tokenize(r'"a\"b\nc"')
    assert toks[0].value == 'a"b\nc'


def test_single_quoted_strings():
    assert tokenize("'hi'")[0].value == "hi"


def test_unterminated_string_raises():
    with pytest.raises(ParseError):
        tokenize('"abc')


def test_multichar_symbols_before_prefixes():
    toks = kinds("a <- b := c <= d != e")
    symbols = [v for k, v in toks if k == "SYMBOL"]
    assert symbols == ["<-", ":=", "<=", "!="]


def test_comments_skipped():
    toks = kinds("a # comment here\n b")
    assert [v for _k, v in toks] == ["a", "b"]


def test_positions_tracked():
    toks = tokenize("a\n  bc")
    assert toks[0].line == 1 and toks[0].column == 1
    assert toks[1].line == 2 and toks[1].column == 3


def test_illegal_character():
    with pytest.raises(ParseError):
        tokenize("a ~ b")
