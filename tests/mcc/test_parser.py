"""Parser tests: surface syntax → AST."""

import pytest

from repro.errors import ParseError
from repro.mcc import ast as A
from repro.mcc.parser import parse


def test_simple_comprehension():
    e = parse("for { x <- S } yield sum x.a")
    assert isinstance(e, A.Comprehension)
    assert e.monoid.name == "sum"
    assert e.qualifiers == (A.Generator("x", A.Var("S")),)
    assert e.head == A.Proj(A.Var("x"), "a")


def test_paper_example_query():
    e = parse(
        'for { e <- Employees, d <- Departments, e.deptNo = d.id, '
        'd.deptName = "HR"} yield sum 1'
    )
    gens = [q for q in e.qualifiers if isinstance(q, A.Generator)]
    filters = [q for q in e.qualifiers if isinstance(q, A.Filter)]
    assert [g.var for g in gens] == ["e", "d"]
    assert len(filters) == 2
    assert e.head == A.Const(1)


def test_record_construction():
    e = parse("for { x <- S } yield bag (a := x.a, b := 2)")
    assert isinstance(e.head, A.RecordCons)
    assert e.head.fields[0][0] == "a"
    assert e.head.fields[1] == ("b", A.Const(2))


def test_parenthesised_grouping_is_not_record():
    e = parse("(1 + 2) * 3")
    assert isinstance(e, A.BinOp) and e.op == "*"


def test_nested_comprehension():
    e = parse("for { x <- S } yield bag (k := for { y <- T, y.id = x.id } yield set y)")
    inner = e.head.fields[0][1]
    assert isinstance(inner, A.Comprehension)
    assert inner.monoid.name == "set"


def test_bind_qualifier():
    e = parse("for { x <- S, v := x.a + 1, v > 2 } yield sum v")
    assert isinstance(e.qualifiers[1], A.Bind)


def test_operator_precedence():
    e = parse("1 + 2 * 3 = 7 and true")
    assert isinstance(e, A.BinOp) and e.op == "and"
    cmp_node = e.left
    assert cmp_node.op == "="
    assert cmp_node.left.op == "+"
    assert cmp_node.left.right.op == "*"


def test_if_then_else():
    e = parse("if x > 0 then 1 else -1")
    assert isinstance(e, A.If)
    assert isinstance(e.els, A.UnOp)


def test_index_expression():
    e = parse("m[1, 2].v")
    assert isinstance(e, A.Proj)
    assert isinstance(e.expr, A.Index)
    assert len(e.expr.indices) == 2


def test_topk_params():
    e = parse("for { x <- S } yield topk(3) x.v")
    assert e.monoid.params == (3,)


def test_list_literal_and_in():
    e = parse('x.city in ["geneva", "bern"]')
    assert e.op == "in"
    assert isinstance(e.right, A.ListLit)


def test_builtin_call():
    e = parse("lower(x.name)")
    assert isinstance(e, A.Call) and e.name == "lower"


def test_like():
    e = parse('x.name like "A%"')
    assert e.op == "like"


def test_unknown_monoid_rejected():
    with pytest.raises(ParseError):
        parse("for { x <- S } yield frobnicate x")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse("1 + 2 garbage(")


def test_empty_qualifiers():
    e = parse("for { } yield sum 1")
    assert e.qualifiers == ()


def test_null_literal():
    e = parse("x.a = null")
    assert isinstance(e.right, A.Null)
