"""Monoid laws (property-based) and monoid behaviour tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcc.monoids import (
    ALL,
    ANY,
    AVG,
    BAG,
    COUNT,
    LIST,
    MAX,
    MIN,
    SET,
    SUM,
    get_monoid,
    is_collection_monoid,
    make_orderby,
    make_topk,
    monoid_names,
    subsumes,
)

_LAW_MONOIDS = [SUM, COUNT, MAX, MIN, ANY, ALL, BAG, LIST, AVG]


@pytest.mark.parametrize("monoid", _LAW_MONOIDS, ids=lambda m: m.name)
@given(values=st.lists(st.integers(min_value=-100, max_value=100), max_size=8))
@settings(max_examples=60, deadline=None)
def test_identity_law(monoid, values):
    """Z⊕ ⊕ x = x ⊕ Z⊕ = x for every lifted accumulator."""
    acc = monoid.zero()
    for v in values:
        acc = monoid.merge(acc, monoid.lift(v))
    assert monoid.finalize(monoid.merge(monoid.zero(), acc)) == monoid.finalize(acc)
    assert monoid.finalize(monoid.merge(acc, monoid.zero())) == monoid.finalize(acc)


@pytest.mark.parametrize("monoid", _LAW_MONOIDS, ids=lambda m: m.name)
@given(
    a=st.lists(st.integers(min_value=-50, max_value=50), max_size=5),
    b=st.lists(st.integers(min_value=-50, max_value=50), max_size=5),
    c=st.lists(st.integers(min_value=-50, max_value=50), max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_associativity_law(monoid, a, b, c):
    def fold(values):
        acc = monoid.zero()
        for v in values:
            acc = monoid.merge(acc, monoid.lift(v))
        return acc

    left = monoid.merge(monoid.merge(fold(a), fold(b)), fold(c))
    right = monoid.merge(fold(a), monoid.merge(fold(b), fold(c)))
    assert monoid.finalize(left) == monoid.finalize(right)


@given(
    a=st.lists(st.integers(), max_size=6),
    b=st.lists(st.integers(), max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_commutative_monoids_commute(a, b):
    for monoid in (SUM, COUNT, MAX, MIN, ANY, ALL):
        fa = monoid.zero()
        for v in a:
            fa = monoid.merge(fa, monoid.lift(v))
        fb = monoid.zero()
        for v in b:
            fb = monoid.merge(fb, monoid.lift(v))
        assert monoid.finalize(monoid.merge(fa, fb)) == monoid.finalize(
            monoid.merge(fb, fa)
        )


@given(st.lists(st.integers(min_value=0, max_value=20), max_size=20))
@settings(max_examples=60, deadline=None)
def test_set_monoid_idempotent(values):
    out = SET.fold(values + values)
    assert sorted(out) == sorted(set(values))


def test_set_monoid_unhashable_elements():
    out = SET.fold([{"a": 1}, {"a": 1}, {"a": 2}])
    assert len(out) == 2


def test_avg():
    assert AVG.fold([1, 2, 3, 4]) == 2.5
    assert AVG.fold([]) is None


def test_median_odd_even():
    median = get_monoid("median")
    assert median.fold([5, 1, 3]) == 3
    assert median.fold([4, 1, 3, 2]) == 2.5
    assert median.fold([]) is None


def test_topk():
    topk = make_topk(3)
    assert topk.fold([5, 9, 1, 7, 3]) == [9, 7, 5]
    assert topk.fold([1]) == [1]


def test_topk_with_key_value_pairs():
    topk = make_topk(2)
    out = topk.fold([(3, "c"), (9, "i"), (5, "e")])
    assert out == ["i", "e"]


def test_topk_invalid_k():
    with pytest.raises(ValueError):
        make_topk(0)


def test_orderby():
    asc = make_orderby()
    assert asc.fold([(3, "c"), (1, "a"), (2, "b")]) == ["a", "b", "c"]
    desc = make_orderby(descending=True)
    assert desc.fold([(3, "c"), (1, "a"), (2, "b")]) == ["c", "b", "a"]


def test_get_monoid_aliases():
    assert get_monoid("or").name == "any"
    assert get_monoid("and").name == "all"
    assert get_monoid("union").name == "set"


def test_get_monoid_unknown():
    with pytest.raises(KeyError):
        get_monoid("nope")
    with pytest.raises(KeyError):
        get_monoid("topk")  # missing parameter


def test_monoid_names_contains_core():
    names = monoid_names()
    for required in ("sum", "bag", "set", "list", "max", "avg", "topk"):
        assert required in names


def test_is_collection_monoid():
    assert is_collection_monoid("bag")
    assert not is_collection_monoid("sum")


def test_subsumes_rules():
    # bag into sum: fine (both commutative, bag not idempotent)
    assert subsumes(SUM, BAG)
    # set into bag: NOT allowed (dedup is significant)
    assert not subsumes(BAG, SET)
    # set into set: fine
    assert subsumes(SET, SET)
    # bag into list: order of a bag is undefined
    assert not subsumes(LIST, BAG)
    # list into list: fine
    assert subsumes(LIST, LIST)
    # non-collection inner never unnests
    assert not subsumes(SUM, SUM)
