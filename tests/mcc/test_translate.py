"""Calculus → algebra translation tests."""

import pytest

from repro.errors import PlanningError
from repro.mcc import ast as A
from repro.mcc.algebra import (
    ExprScanOp,
    JoinOp,
    ReduceOp,
    ScanOp,
    SelectOp,
    UnnestOp,
    explain,
)
from repro.mcc.normalize import normalize
from repro.mcc.parser import parse
from repro.mcc.translate import referenced_sources, translate

SOURCES = {"S", "T", "U"}


def plan(text):
    return translate(normalize(parse(text)), SOURCES)


def test_single_scan_reduce():
    p = plan("for { x <- S } yield sum x.a")
    assert isinstance(p, ReduceOp)
    assert isinstance(p.child, ScanOp)
    assert p.child.source == "S"


def test_filter_becomes_select():
    p = plan("for { x <- S, x.a > 1 } yield sum x.a")
    assert isinstance(p.child, SelectOp)
    assert isinstance(p.child.child, ScanOp)


def test_two_sources_join():
    p = plan("for { x <- S, y <- T, x.id = y.id } yield count 1")
    node = p.child
    assert isinstance(node, SelectOp)  # join predicate as selection over join
    assert isinstance(node.child, JoinOp)


def test_dependent_generator_is_unnest():
    p = plan("for { x <- S, i <- x.items } yield sum i.v")
    assert isinstance(p.child, UnnestOp)
    assert p.child.var == "i"


def test_expression_generator():
    p = plan("for { x <- [1, 2, 3] } yield sum x")
    assert isinstance(p.child, ExprScanOp)


def test_unknown_source_rejected():
    with pytest.raises(PlanningError):
        plan("for { x <- Mystery } yield sum x.a")


def test_generator_free_comprehension():
    p = plan("for { } yield sum 1")
    assert isinstance(p.child, ExprScanOp)


def test_three_way_join_left_deep():
    p = plan(
        "for { x <- S, y <- T, z <- U, x.id = y.id, y.id = z.id } yield count 1"
    )
    # drill to the join tree: Select(Select(Join(Join(S,T),U)))
    node = p.child
    while isinstance(node, SelectOp):
        node = node.child
    assert isinstance(node, JoinOp)
    assert isinstance(node.left, JoinOp)


def test_explain_renders():
    p = plan("for { x <- S, x.a > 1, i <- x.items } yield bag (v := i.v)")
    text = explain(p)
    assert "Reduce" in text and "Unnest" in text and "Scan(S as x)" in text


def test_referenced_sources():
    e = normalize(parse(
        "for { x <- S } yield bag (k := for { y <- T } yield sum y.v)"
    ))
    assert referenced_sources(e, SOURCES) == {"S", "T"}
