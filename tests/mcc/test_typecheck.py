"""Type-checker tests against catalog-style environments."""

import pytest

from repro.errors import TypeCheckError
from repro.mcc import types as T
from repro.mcc.parser import parse
from repro.mcc.typecheck import typecheck

ENV = {
    "S": T.bag_of(T.RecordType.of({"a": T.INT, "b": T.STRING, "f": T.FLOAT})),
    "Nested": T.bag_of(T.RecordType.of({
        "id": T.INT,
        "items": T.list_of(T.RecordType.of({"v": T.FLOAT})),
    })),
    "Grid": T.ArrayType((T.Dim("i"), T.Dim("j")),
                        T.RecordType.of({"val": T.FLOAT})),
    "Raw": T.bag_of(T.ANY),
}


def check(text):
    return typecheck(parse(text), ENV)


def test_aggregate_types():
    assert check("for { x <- S } yield sum x.a") == T.INT
    assert check("for { x <- S } yield avg x.a") == T.FLOAT
    assert check("for { x <- S } yield count 1") == T.INT
    assert check("for { x <- S } yield max x.f") == T.FLOAT


def test_collection_result_types():
    t = check("for { x <- S } yield bag (a := x.a)")
    assert t == T.bag_of(T.RecordType.of({"a": T.INT}))
    t = check("for { x <- S } yield set x.b")
    assert t == T.set_of(T.STRING)


def test_unknown_source():
    with pytest.raises(TypeCheckError):
        check("for { x <- Unknown } yield sum x.a")


def test_unknown_field():
    with pytest.raises(TypeCheckError):
        check("for { x <- S } yield sum x.nope")


def test_filter_must_be_bool():
    with pytest.raises(TypeCheckError):
        check("for { x <- S, x.a + 1 } yield sum x.a")


def test_numeric_monoid_rejects_string_head():
    with pytest.raises(TypeCheckError):
        check("for { x <- S } yield sum x.b")


def test_max_accepts_string():
    assert check("for { x <- S } yield max x.b") == T.STRING


def test_generator_must_be_collection():
    with pytest.raises(TypeCheckError):
        check("for { x <- S, y <- x.a } yield sum y")


def test_nested_collection_generator():
    assert check("for { n <- Nested, i <- n.items } yield sum i.v") == T.FLOAT


def test_array_generator_binds_dims_and_fields():
    assert check("for { c <- Grid } yield sum c.val") == T.FLOAT
    assert check("for { c <- Grid, c.i = 0 } yield sum c.val") == T.FLOAT


def test_array_indexing():
    env = dict(ENV)
    # indexing with full rank gives the element type
    assert typecheck(parse("for { c <- Grid, c.i > 0 } yield avg c.val"), env) == T.FLOAT


def test_gradual_typing_any_source():
    assert check("for { r <- Raw, r.whatever > 1 } yield count 1") == T.INT


def test_comparison_type_mismatch():
    with pytest.raises(TypeCheckError):
        check('for { x <- S, x.a = "text" } yield sum x.a')


def test_arithmetic_type_error():
    with pytest.raises(TypeCheckError):
        check('for { x <- S } yield sum (x.b * 2)')


def test_string_concat_allowed():
    assert check('for { x <- S } yield bag (x.b + "!")') == T.bag_of(T.STRING)


def test_if_branch_unification():
    assert check("for { x <- S } yield sum (if x.a > 0 then x.a else x.f)") == T.FLOAT


def test_if_branch_incompatible():
    with pytest.raises(TypeCheckError):
        check('for { x <- S } yield bag (if x.a > 0 then x.a else x.b)')


def test_in_needs_collection():
    with pytest.raises(TypeCheckError):
        check("for { x <- S, x.a in x.b } yield sum x.a")
    assert check("for { x <- S, x.a in [1, 2] } yield sum x.a") == T.INT


def test_record_duplicate_field():
    with pytest.raises(TypeCheckError):
        check("for { x <- S } yield bag (a := 1, a := 2)")


def test_unbound_variable():
    with pytest.raises(TypeCheckError):
        check("for { x <- S } yield sum y.a")


def test_all_any_need_bool():
    assert check("for { x <- S } yield all (x.a > 0)") == T.BOOL
    with pytest.raises(TypeCheckError):
        check("for { x <- S } yield all x.a")


def test_bind_qualifier_typing():
    assert check("for { x <- S, v := x.a * 2, v > 3 } yield sum v") == T.INT


def test_heterogeneous_list_degrades_to_any():
    assert check('for { x <- S } yield bag [x.a, x.b]') == T.bag_of(T.list_of(T.ANY))
