"""Normalization-rule tests (Fegaras-Maier rewrites)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcc import ast as A
from repro.mcc.monoids import get_monoid
from repro.mcc.normalize import normalize
from repro.mcc.parser import parse
from repro.mcc.pretty import pretty


def norm(text):
    return pretty(normalize(parse(text)))


def test_beta_reduction():
    e = A.Apply(A.Lambda("v", A.BinOp("+", A.Var("v"), A.Const(1))), A.Const(2))
    assert normalize(e) == A.Const(3)  # (λv.v+1)(2) → 2+1 → 3 (folded)


def test_record_projection_simplified():
    e = parse("(a := 1, b := 2).b")
    assert normalize(e) == A.Const(2)


def test_constant_folding_booleans():
    assert norm("for { x <- S, true } yield sum x.a") == "for { x <- S } yield sum x.a"
    assert normalize(parse("for { x <- S, false } yield sum x.a")) == A.Zero(get_monoid("sum"))


def test_conjunction_splitting():
    e = normalize(parse("for { x <- S, x.a > 1 and x.b < 2 } yield sum x.a"))
    filters = [q for q in e.qualifiers if isinstance(q, A.Filter)]
    assert len(filters) == 2


def test_bind_elimination():
    out = norm("for { x <- S, v := x.a + 1, v > 2 } yield sum v")
    assert ":=" not in out
    assert "x.a + 1" in out


def test_generator_unnesting_bag_into_sum():
    out = norm("for { x <- (for { y <- S, y.a > 1 } yield bag y.b) } yield sum x")
    assert out == "for { y <- S, y.a > 1 } yield sum y.b"


def test_set_generator_not_unnested_into_bag():
    text = "for { x <- (for { y <- S } yield set y.b) } yield bag x"
    e = normalize(parse(text))
    # inner set comprehension must survive (dedup is significant)
    assert isinstance(e.qualifiers[0], A.Generator)
    assert isinstance(e.qualifiers[0].source, A.Comprehension)
    assert e.qualifiers[0].source.monoid.name == "set"


def test_singleton_generator():
    e = A.Comprehension(
        get_monoid("sum"),
        A.BinOp("+", A.Var("v"), A.Const(1)),
        (A.Generator("v", A.Singleton(get_monoid("bag"), A.Const(41))),),
    )
    out = normalize(e)
    assert out == A.Comprehension(get_monoid("sum"), A.Const(42), ())


def test_one_element_list_generator():
    out = norm("for { x <- [5] } yield sum (x + 1)")
    assert out == "for {  } yield sum 6"


def test_empty_list_generator_is_zero():
    e = normalize(parse("for { x <- [] } yield sum x"))
    assert isinstance(e, A.Zero)


def test_merge_generator_splits():
    e = A.Comprehension(
        get_monoid("sum"), A.Var("v"),
        (A.Generator("v", A.Merge(get_monoid("bag"), A.Var("S"), A.Var("T"))),),
    )
    out = normalize(e)
    assert isinstance(out, A.Merge)
    assert isinstance(out.left, A.Comprehension)


def test_if_generator_splits_into_guarded_merge():
    e = normalize(parse(
        "for { x <- (if c then S else T) } yield sum x.a"
    ))
    assert isinstance(e, A.Merge)
    left, right = e.left, e.right
    assert any(isinstance(q, A.Filter) for q in left.qualifiers)
    assert any(isinstance(q, A.Filter) for q in right.qualifiers)


def test_constant_comparison_folding():
    assert normalize(parse("3 < 5")) == A.Const(True)
    assert normalize(parse("if 3 < 5 then 1 else 2")) == A.Const(1)


def test_capture_avoiding_substitution():
    # binding var shadows: inner x must not be replaced
    e = parse("for { x <- S, v := 1 } yield bag (for { x <- T } yield sum x.a)")
    out = normalize(e)
    inner = out.head
    assert isinstance(inner, A.Comprehension)
    assert inner.qualifiers[0].var == "x"


def test_normalize_idempotent_on_samples():
    samples = [
        "for { x <- S, x.a > 1 } yield sum x.a",
        "for { x <- S, y <- T, x.id = y.id } yield bag (a := x.a)",
        "for { x <- (for { y <- S } yield bag y.b), x > 2 } yield max x",
    ]
    for text in samples:
        once = normalize(parse(text))
        twice = normalize(once)
        assert once == twice


@given(st.integers(min_value=-20, max_value=20),
       st.integers(min_value=-20, max_value=20))
@settings(max_examples=30, deadline=None)
def test_constant_arith_comparisons_fold(a, b):
    e = normalize(parse(f"{a} <= {b}"))
    assert e == A.Const(a <= b)
