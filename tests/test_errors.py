"""Error hierarchy and message-formatting tests."""

import pytest

from repro import errors as E


def test_all_errors_derive_from_vida_error():
    for name in ("ParseError", "TypeCheckError", "CatalogError",
                 "PlanningError", "CodegenError", "ExecutionError",
                 "DataFormatError", "CleaningError", "StorageError",
                 "WarehouseError"):
        cls = getattr(E, name)
        assert issubclass(cls, E.ViDaError)


def test_parse_error_location():
    err = E.ParseError("unexpected token", line=3, column=7)
    assert "line 3" in str(err) and "column 7" in str(err)
    assert err.line == 3 and err.column == 7
    bare = E.ParseError("oops")
    assert str(bare) == "oops"


def test_cleaning_error_context():
    err = E.CleaningError("bad value", row=12, field="age")
    assert "row 12" in str(err) and "'age'" in str(err)
    assert err.row == 12 and err.field == "age"


def test_cleaning_error_is_data_format_error():
    assert issubclass(E.CleaningError, E.DataFormatError)


def test_catching_base_class():
    with pytest.raises(E.ViDaError):
        raise E.PlanningError("no plan")
