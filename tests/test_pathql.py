"""PathQL (XPath-flavoured dialect) tests."""

import pytest

from repro.errors import ParseError
from repro.languages.pathql import _split_steps, translate_path
from repro.mcc.pretty import pretty


def test_split_steps():
    assert _split_steps("/A/b[c > 1]/d") == ["A", "b[c > 1]", "d"]
    assert _split_steps('/A[x = "a/b"]') == ['A[x = "a/b"]']


def test_split_steps_errors():
    with pytest.raises(ParseError):
        _split_steps("A/b")
    with pytest.raises(ParseError):
        _split_steps("/A[b")
    with pytest.raises(ParseError):
        _split_steps("/A//b")


def test_translation_shape(db):
    expr = translate_path("/Patients[age > 60]/id", db.catalog)
    text = pretty(expr)
    assert "Patients" in text and "_s0.age > 60" in text and "_s0.id" in text


def test_unknown_source(db):
    with pytest.raises(ParseError):
        translate_path("/Nope/id", db.catalog)


def test_simple_projection(db):
    ids = db.path("/Patients[age > 70]/id").value
    check = db.query("for { p <- Patients, p.age > 70 } yield bag p.id").value
    assert ids == check


def test_whole_elements(db):
    out = db.path('/Patients[gender = "f" and age < 25]').value
    assert all(row["gender"] == "f" for row in out)


def test_descend_into_collections(db):
    names = db.path("/BrainRegions/regions[volume > 12.0]/name").value
    check = db.query(
        "for { b <- BrainRegions, r <- b.regions, r.volume > 12.0 } "
        "yield bag r.name"
    ).value
    assert names == check
    assert len(names) > 0


def test_predicate_on_source_then_descend(db):
    out = db.path("/BrainRegions[quality >= 0.9]/regions/volume").value
    check = db.query(
        "for { b <- BrainRegions, b.quality >= 0.9, r <- b.regions } "
        "yield bag r.volume"
    ).value
    assert out == check


def test_terminal_collection_step_with_predicate(db):
    out = db.path("/BrainRegions/regions[volume > 13.0]").value
    assert all(r["volume"] > 13.0 for r in out)


def test_pathql_engines_agree(db):
    q = "/BrainRegions/regions[volume > 12.0]/name"
    assert db.path(q).value == db.path(q, engine="static").value


def test_pathql_output_shaping(db):
    out = db.path("/Patients[age > 70]/id", output="columns")
    assert "value" in out.value
