"""SQL layer tests: parsing + translation + execution through ViDa."""

import pytest

from repro import ViDa
from repro.errors import ParseError, TypeCheckError
from repro.formats import write_csv
from repro.languages.sql import parse_sql, translate_sql
from repro.languages.sql import ast as S


@pytest.fixture()
def sqldb(tmp_path):
    write_csv(tmp_path / "emp.csv", ["id", "dept", "salary", "name"],
              [(i, ["hr", "it", "ops"][i % 3], 1000 + 100 * i, f"e{i}")
               for i in range(30)])
    write_csv(tmp_path / "dept.csv", ["dept", "budget"],
              [("hr", 10_000), ("it", 50_000), ("ops", 20_000)])
    db = ViDa()
    db.register_csv("Employees", tmp_path / "emp.csv")
    db.register_csv("Departments", tmp_path / "dept.csv")
    return db


# -- parser -----------------------------------------------------------


def test_parse_select_shape():
    stmt = parse_sql(
        "SELECT e.name AS n, e.salary FROM Employees e "
        "JOIN Departments d ON e.dept = d.dept "
        "WHERE e.salary > 2000 AND d.budget >= 10000 "
        "ORDER BY e.salary DESC LIMIT 5"
    )
    assert stmt.items[0].alias == "n"
    assert stmt.joins[0].table.alias == "d"
    assert stmt.order_by[0].descending
    assert stmt.limit == 5


def test_parse_aggregates():
    stmt = parse_sql("SELECT COUNT(*), AVG(salary), COUNT(DISTINCT dept) FROM T")
    aggs = [i.expr for i in stmt.items]
    assert aggs[0].arg is None
    assert aggs[1].func == "avg"
    assert aggs[2].distinct


def test_parse_between_and_is_null():
    stmt = parse_sql("SELECT a FROM T WHERE a BETWEEN 1 AND 5 AND b IS NOT NULL")
    cond = stmt.where
    assert isinstance(cond, S.SQLBinOp) and cond.op == "and"


def test_parse_in_list_and_strings():
    stmt = parse_sql("SELECT a FROM T WHERE name IN ('it''s', 'b')")
    inlist = stmt.where
    assert isinstance(inlist, S.InList)
    assert inlist.items[0].value == "it's"


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_sql("SELECT FROM T")
    with pytest.raises(ParseError):
        parse_sql("SELECT a FROM T WHERE frobnicate(a)")
    with pytest.raises(ParseError):
        parse_sql("SELECT a FROM T; SELECT b FROM T")


# -- execution -----------------------------------------------------------


def test_sql_count(sqldb):
    assert sqldb.sql("SELECT COUNT(*) FROM Employees e WHERE e.salary >= 2000").value == 20


def test_sql_join_projection(sqldb):
    out = sqldb.sql(
        "SELECT e.name, d.budget FROM Employees e "
        "JOIN Departments d ON e.dept = d.dept WHERE d.budget > 15000 "
    ).value
    assert all(row["budget"] > 15000 for row in out)
    assert len(out) == 20  # it + ops


def test_sql_unqualified_columns_resolve(sqldb):
    out = sqldb.sql("SELECT name FROM Employees e WHERE salary = 1000").value
    assert out == [{"name": "e0"}]


def test_sql_ambiguous_column_rejected(sqldb):
    with pytest.raises(TypeCheckError):
        sqldb.sql(
            "SELECT dept FROM Employees e JOIN Departments d ON e.dept = d.dept"
        )


def test_sql_group_by_having(sqldb):
    out = sqldb.sql(
        "SELECT dept, COUNT(*) AS n, MAX(salary) AS top FROM Employees e "
        "GROUP BY dept HAVING COUNT(*) >= 10"
    ).value
    assert {r["dept"] for r in out} == {"hr", "it", "ops"}
    assert all(r["n"] == 10 for r in out)


def test_sql_order_by_limit(sqldb):
    out = sqldb.sql(
        "SELECT e.id FROM Employees e ORDER BY e.salary DESC LIMIT 3"
    ).value
    assert [r["id"] for r in out] == [29, 28, 27]


def test_sql_distinct(sqldb):
    out = sqldb.sql("SELECT DISTINCT dept FROM Employees e").value
    assert len(out) == 3


def test_sql_multi_aggregate_record(sqldb):
    out = sqldb.sql(
        "SELECT COUNT(*) AS n, AVG(salary) AS a FROM Employees e"
    ).value
    assert out["n"] == 30
    assert out["a"] == pytest.approx(1000 + 100 * 14.5)


def test_sql_count_distinct(sqldb):
    assert sqldb.sql("SELECT COUNT(DISTINCT dept) FROM Employees e").value == 3


def test_sql_count_column_skips_nulls(tmp_path):
    write_csv(tmp_path / "t.csv", ["a", "b"], [(1, 10), (2, None), (3, 30)])
    db = ViDa()
    db.register_csv("T", tmp_path / "t.csv")
    assert db.sql("SELECT COUNT(b) FROM T t").value == 2
    assert db.sql("SELECT COUNT(*) FROM T t").value == 3


def test_sql_between(sqldb):
    out = sqldb.sql(
        "SELECT e.id FROM Employees e WHERE e.salary BETWEEN 1100 AND 1300"
    ).value
    assert [r["id"] for r in out] == [1, 2, 3]


def test_sql_like(sqldb):
    out = sqldb.sql("SELECT e.id FROM Employees e WHERE e.name LIKE 'e2%'").value
    assert sorted(r["id"] for r in out) == [2, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29]


def test_sql_star(sqldb):
    out = sqldb.sql("SELECT * FROM Departments d").value
    assert len(out) == 3 and "budget" in out[0]


def test_sql_translation_produces_comprehension(sqldb):
    expr = translate_sql("SELECT COUNT(*) FROM Employees e WHERE e.salary > 0",
                         sqldb.catalog)
    from repro.mcc import ast as A

    assert isinstance(expr, A.Comprehension)
    assert expr.monoid.name == "count"


def test_sql_mixing_agg_and_plain_rejected(sqldb):
    with pytest.raises(ParseError):
        sqldb.sql("SELECT dept, COUNT(*) FROM Employees e")
