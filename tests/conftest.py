"""Shared fixtures: small raw datasets and a ready ViDa session."""

from __future__ import annotations

import json
import os

import pytest

from repro import ViDa
from repro.formats import write_array, write_csv, write_workbook


@pytest.fixture()
def patients_csv(tmp_path):
    path = tmp_path / "patients.csv"
    rows = [
        (i, 20 + (i * 7) % 60, "m" if i % 2 else "f",
         ["geneva", "lausanne", "zurich"][i % 3],
         round(40 + (i % 11) * 1.5, 2) if i % 13 else None)
        for i in range(60)
    ]
    write_csv(path, ["id", "age", "gender", "city", "protein"], rows)
    return str(path)


@pytest.fixture()
def genetics_csv(tmp_path):
    path = tmp_path / "genetics.csv"
    rows = [(i, i % 3, (i * 5) % 3, i % 2) for i in range(60)]
    write_csv(path, ["id", "snp_a", "snp_b", "snp_c"], rows)
    return str(path)


@pytest.fixture()
def brain_json(tmp_path):
    path = tmp_path / "brain.json"
    with open(path, "w") as fh:
        for i in range(60):
            obj = {
                "id": i,
                "quality": round(0.5 + (i % 10) / 20, 2),
                "volume_total": round(100 + i * 1.5, 1),
                "meta": {"pipeline": ["fsl", "spm"][i % 2], "version": i % 4},
                "regions": [
                    {"name": f"BA{r}", "volume": round(10 + r + i * 0.1, 2)}
                    for r in range(3)
                ],
            }
            fh.write(json.dumps(obj) + "\n")
    return str(path)


@pytest.fixture()
def array_file(tmp_path):
    path = tmp_path / "grid.varr"
    values = [(float(i + j), float(i * j)) for i in range(4) for j in range(5)]
    write_array(path, (4, 5), [("elevation", "float"), ("temperature", "float")],
                values)
    return str(path)


@pytest.fixture()
def xls_file(tmp_path):
    path = tmp_path / "book.vxls"
    write_workbook(path, [
        ("trades", ["id", "amount", "desk"],
         [(i, round(100.5 * (i + 1), 2), ["fx", "rates"][i % 2]) for i in range(10)]),
        ("risk", ["id", "var"], [(i, i * 0.1) for i in range(5)]),
    ])
    return str(path)


@pytest.fixture()
def db(patients_csv, genetics_csv, brain_json):
    session = ViDa()
    session.register_csv("Patients", patients_csv)
    session.register_csv("Genetics", genetics_csv)
    session.register_json("BrainRegions", brain_json)
    return session
