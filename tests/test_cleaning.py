"""Data-cleaning policy tests (paper §7)."""

import pytest

from repro import CleaningError, ViDa
from repro.cleaning import (
    DictionaryPolicy,
    NullPolicy,
    RaisePolicy,
    SkipPolicy,
    hamming,
    nearest_value,
)


@pytest.fixture()
def dirty_csv(tmp_path):
    path = tmp_path / "dirty.csv"
    path.write_text(
        "id,age,city\n"
        "1,30,geneva\n"
        "2,notanumber,lausanne\n"
        "3,45,genevq\n"          # typo city (conversion fine, string col)
        "4,52,bern\n"
        "5,abc,zurich\n"
    )
    return str(path)


def _db(dirty_csv, policy):
    db = ViDa()
    db.register_csv("T", dirty_csv, columns=["id", "age", "city"],
                    types=["int", "int", "string"])
    if policy is not None:
        db.set_cleaning("T", policy)
    return db


def test_no_policy_raises(dirty_csv):
    db = _db(dirty_csv, None)
    with pytest.raises(Exception):
        db.query("for { t <- T } yield sum t.age")


def test_skip_policy(dirty_csv):
    db = _db(dirty_csv, SkipPolicy())
    r = db.query("for { t <- T } yield bag (id := t.id, age := t.age)")
    assert [row["id"] for row in r.value] == [1, 3, 4]
    assert r.stats.skipped_rows == 2


def test_skip_policy_static_engine_agrees(dirty_csv):
    db = _db(dirty_csv, SkipPolicy())
    jit = db.query("for { t <- T } yield sum t.age").value
    db2 = _db(dirty_csv, SkipPolicy())
    static = db2.query("for { t <- T } yield sum t.age", engine="static").value
    assert jit == static == 30 + 45 + 52


def test_null_policy(dirty_csv):
    db = _db(dirty_csv, NullPolicy())
    r = db.query("for { t <- T } yield bag (age := t.age)")
    ages = [row["age"] for row in r.value]
    assert ages == [30, None, 45, 52, None]
    assert db.query("for { t <- T } yield count 1").value == 5


def test_raise_policy(dirty_csv):
    db = _db(dirty_csv, RaisePolicy())
    with pytest.raises(CleaningError) as err:
        db.query("for { t <- T } yield sum t.age")
    assert err.value.row == 1
    assert err.value.field == "age"


def test_dictionary_policy_range_repair(dirty_csv):
    policy = DictionaryPolicy(ranges={"age": (0, 120)}, fallback_skip=False)
    db = _db(dirty_csv, policy)
    r = db.query("for { t <- T } yield bag (age := t.age)")
    # unparseable ages become the range midpoint
    assert [row["age"] for row in r.value] == [30, 60.0, 45, 52, 60.0]
    assert policy.repairs == 2


def test_dictionary_policy_range_clamps(tmp_path):
    path = tmp_path / "r.csv"
    path.write_text("id,age\n1,300\n2,45\n")
    policy = DictionaryPolicy(ranges={"age": (0, 120)})
    db = ViDa()
    db.register_csv("T", path, columns=["id", "age"], types=["int", "int"])
    db.set_cleaning("T", policy)
    # clamping applies only on the repair path (row must trigger repair);
    # exercise repair() directly for the clamp behaviour:
    plugin = db.catalog.get("T").plugin
    assert policy.repair(plugin, 0, ["1", "300"], [0, 1]) == (1, 120)


def test_dictionary_policy_repairs_valid_parse_invalid_domain(dirty_csv):
    """'genevq' parses fine as a string but is not a valid city; the policy
    must still repair it (paper: dictionaries of valid values)."""
    policy = DictionaryPolicy(
        dictionaries={"city": ["geneva", "lausanne", "bern", "zurich"]},
        ranges={"age": (0, 120)},
        fallback_skip=False,
    )
    db = _db(dirty_csv, policy)
    r = db.query("for { t <- T } yield bag (city := t.city)")
    assert [row["city"] for row in r.value] == \
        ["geneva", "lausanne", "geneva", "bern", "zurich"]
    db2 = _db(dirty_csv, DictionaryPolicy(
        dictionaries={"city": ["geneva", "lausanne", "bern", "zurich"]},
        ranges={"age": (0, 120)}, fallback_skip=False))
    static = db2.query("for { t <- T } yield bag (city := t.city)",
                       engine="static")
    assert [row["city"] for row in static.value] == \
        [row["city"] for row in r.value]


def test_dictionary_policy_nearest_value():
    assert nearest_value("genevq", ["geneva", "bern", "zurich"]) == "geneva"
    assert nearest_value("xx", []) is None


def test_hamming():
    assert hamming("karolin", "kathrin") == 3
    assert hamming("", "") == 0
    with pytest.raises(ValueError):
        hamming("ab", "abc")


def test_cleaning_with_warm_scan(dirty_csv):
    """Cleaning must survive the positional-map (warm) access path too."""
    db = _db(dirty_csv, SkipPolicy())
    first = db.query("for { t <- T } yield sum t.age").value
    db.cache.clear()  # force re-scan via the warm path
    second = db.query("for { t <- T } yield sum t.age").value
    assert first == second == 30 + 45 + 52


def test_projection_pushdown_avoids_dirty_fields(dirty_csv):
    """A query that never touches the dirty column sees every row — the
    paper's point that raw access costs (and failures) are per-attribute."""
    db = _db(dirty_csv, SkipPolicy())
    assert db.query("for { t <- T } yield count 1").value == 5


def test_set_cleaning_unknown_source():
    db = ViDa()
    with pytest.raises(Exception):
        db.set_cleaning("Nope", SkipPolicy())
