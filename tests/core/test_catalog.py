"""Catalog tests: registration, schemas, freshness detection."""

import os

import pytest

from repro.core.catalog import Catalog
from repro.errors import CatalogError
from repro.formats import write_csv
from repro.mcc import types as T


def test_duplicate_registration(patients_csv):
    cat = Catalog()
    cat.register_csv("P", patients_csv)
    with pytest.raises(CatalogError):
        cat.register_csv("P", patients_csv)


def test_unknown_lookup():
    cat = Catalog()
    with pytest.raises(CatalogError):
        cat.get("ghost")
    with pytest.raises(CatalogError):
        cat.deregister("ghost")


def test_deregister(patients_csv):
    cat = Catalog()
    cat.register_csv("P", patients_csv)
    cat.deregister("P")
    assert "P" not in cat
    cat.register_csv("P", patients_csv)  # name is reusable


def test_type_env_shapes(patients_csv, brain_json, array_file):
    cat = Catalog()
    cat.register_csv("P", patients_csv)
    cat.register_json("B", brain_json)
    cat.register_array("G", array_file, ["i", "j"])
    env = cat.type_env()
    assert isinstance(env["P"], T.CollectionType)
    assert isinstance(env["G"], T.ArrayType)
    assert env["B"].elem.field_type("regions") is not None


def test_explicit_csv_schema(tmp_path):
    path = tmp_path / "x.csv"
    write_csv(path, ["a", "b"], [(1, 2)])
    cat = Catalog()
    entry = cat.register_csv("X", path, columns=["a", "b"],
                             types=["float", "string"])
    elem = entry.description.element_type
    assert elem.field_type("a") == T.FLOAT
    assert elem.field_type("b") == T.STRING


def test_freshness_drops_auxiliaries(tmp_path):
    path = tmp_path / "f.csv"
    write_csv(path, ["a"], [(1,), (2,)])
    cat = Catalog()
    entry = cat.register_csv("F", path)
    list(entry.plugin.scan(["a"]))
    assert entry.plugin.posmap.complete
    assert cat.check_freshness("F")  # unchanged

    write_csv(path, ["a"], [(9,), (8,), (7,)])
    os.utime(path, ns=(123, 456))
    assert not cat.check_freshness("F")
    assert not entry.plugin.posmap.complete  # auxiliary dropped (paper §2.1)
    # fingerprint refreshed: next check is clean
    assert cat.check_freshness("F")


def test_memory_entries_have_no_fingerprint():
    cat = Catalog()
    cat.register_memory("M", [{"v": 1}])
    assert cat.check_freshness("M")
    assert cat.get("M").data == [{"v": 1}]


def test_names_frozen(patients_csv):
    cat = Catalog()
    cat.register_csv("P", patients_csv)
    names = cat.names()
    assert names == frozenset({"P"})
    with pytest.raises(AttributeError):
        names.add("Q")  # frozenset
