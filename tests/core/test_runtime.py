"""QueryRuntime unit tests."""

import pytest

from repro.caching import DataCache
from repro.core.catalog import Catalog
from repro.core.executor.runtime import QueryRuntime
from repro.errors import ExecutionError


@pytest.fixture()
def catalog(patients_csv, brain_json, array_file, xls_file):
    cat = Catalog()
    cat.register_csv("Patients", patients_csv)
    cat.register_json("Brain", brain_json)
    cat.register_array("Grid", array_file, ["i", "j"])
    cat.register_xls("Book", xls_file, "trades")
    return cat


def make_rt(catalog, cache=None):
    return QueryRuntime(catalog, cache or DataCache())


def test_csv_cold_chunks_build_posmap_and_stats(catalog):
    rt = make_rt(catalog)
    chunks = list(rt.csv_chunks("Patients", ("id",), access="cold",
                                batch_size=16))
    assert sum(c.length for c in chunks) == 60
    assert len(chunks) == 4  # 60 rows at batch_size 16
    assert rt.stats.raw_rows == 60
    assert "Patients" in rt.stats.raw_sources
    assert catalog.get("Patients").plugin.posmap.complete
    assert not rt.stats.cache_only


def test_csv_whole_chunk_row_conversion(catalog):
    rt = make_rt(catalog)
    (chunk, *_rest) = list(rt.csv_chunks("Patients", (), access="cold",
                                         batch_size=64, whole=True))
    row = chunk.whole[0]  # fixture row 0: protein is a null token
    assert row == {"id": 0, "age": 20, "gender": "f", "city": "geneva",
                   "protein": None}
    assert all(isinstance(r["id"], int) for r in chunk.whole)


def test_cache_data_errors_without_entry(catalog):
    rt = make_rt(catalog)
    with pytest.raises(ExecutionError):
        rt.cache_data("Patients", ("age",), whole=False)


def test_admit_then_serve_columns(catalog):
    cache = DataCache()
    rt = make_rt(catalog, cache)
    rt.admit_columns("Patients", ("age", "id"),
                     ([30, 40], [1, 2]))
    cols, layout = rt.cache_data("Patients", ("id",), whole=False)
    assert layout == "columns"
    assert cols == [[1, 2]]
    assert rt.stats.cache_rows == 2


def test_admit_elements_objects(catalog):
    cache = DataCache()
    rt = make_rt(catalog, cache)
    rt.admit_elements("Brain", "objects", [{"id": 1}, {"id": 2}])
    data, layout = rt.cache_data("Brain", (), whole=True)
    assert layout == "objects"
    assert [d["id"] for d in data] == [1, 2]


def test_iter_source_shapes(catalog):
    rt = make_rt(catalog)
    patient = next(iter(rt.iter_source("Patients")))
    assert set(patient) == {"id", "age", "gender", "city", "protein"}
    brain = next(iter(rt.iter_source("Brain")))
    assert "regions" in brain
    cell = next(iter(rt.iter_source("Grid")))
    assert set(cell) == {"i", "j", "elevation", "temperature"}
    trade = next(iter(rt.iter_source("Book")))
    assert set(trade) == {"id", "amount", "desk"}


def test_memory_source_not_memory_error(catalog):
    rt = make_rt(catalog)
    with pytest.raises(ExecutionError):
        rt.memory("Patients")


def test_csv_chunks_cleaning_stats(catalog, tmp_path):
    from repro.cleaning import SkipPolicy
    from repro.core.catalog import Catalog

    path = tmp_path / "dirty.csv"
    path.write_text("id,age\n1,30\n2,bad\n3,45\n")
    cat = Catalog()
    cat.register_csv("D", str(path), columns=["id", "age"],
                     types=["int", "int"])
    rt = QueryRuntime(cat, DataCache(), cleaning={"D": SkipPolicy()})
    chunks = list(rt.csv_chunks("D", ("age",), access="cold"))
    # chunks travel uncompacted: the selection vector marks the survivors
    # and selection-aware accessors never surface the dropped row
    assert [v for c in chunks for v in c.selected_columns()[0]] == [30, 45]
    assert [row for c in chunks for row in c.rows()] == [(30,), (45,)]
    assert rt.stats.skipped_rows == 1
    assert rt.stats.raw_rows == 3  # the dropped row was still scanned


def test_monoid_lookup(catalog):
    rt = make_rt(catalog)
    assert rt.monoid("sum").fold([1, 2]) == 3
    assert rt.monoid("topk", (2,)).fold([3, 1, 5]) == [5, 3]


def test_json_spans_and_assemble(catalog):
    rt = make_rt(catalog)
    spans = list(rt.json_spans("Brain"))
    assert len(spans) == 60
    objs = rt.json_assemble("Brain", spans[:3])
    assert [o["id"] for o in objs] == [0, 1, 2]


def test_device_routing(catalog):
    from repro.storage import StorageDevice

    dev = StorageDevice("hdd")
    rt = QueryRuntime(catalog, DataCache(), devices={"*": dev})
    list(rt.csv_chunks("Patients", ("id",), access="cold"))
    assert dev.stats.bytes_read > 0
