"""Calculus corner cases end-to-end through both executors."""

import pytest

from repro import ViDa


@pytest.fixture()
def xdb():
    db = ViDa()
    db.register_memory("Nums", [{"v": i, "s": f"w{i}"} for i in range(10)])
    db.register_memory("Mat", [{"row": [1, 2, 3]}, {"row": [4, 5, 6]}])
    db.register_memory("Mixed", [
        {"v": 1, "tag": "apple"}, {"v": None, "tag": "banana"},
        {"v": 3, "tag": None},
    ])
    return db


def both(db, q):
    jit = db.query(q).value
    static = db.query(q, engine="static").value
    if isinstance(jit, list):
        assert sorted(map(repr, jit)) == sorted(map(repr, static))
    else:
        assert jit == static
    return jit


def test_expression_generator_over_literal(xdb):
    assert both(xdb, "for { x <- [1, 2, 3], x > 1 } yield sum x") == 5


def test_bind_in_qualifiers(xdb):
    out = both(xdb, "for { n <- Nums, d := n.v * 2, d > 10 } yield bag d")
    assert sorted(out) == [12, 14, 16, 18]


def test_if_then_else_in_head(xdb):
    out = both(xdb, 'for { n <- Nums } yield sum (if n.v > 4 then 1 else 0)')
    assert out == 5


def test_index_expression(xdb):
    out = both(xdb, "for { m <- Mat } yield sum m.row[1]")
    assert out == 7


def test_string_functions(xdb):
    out = both(xdb, 'for { n <- Nums, endswith(n.s, "3") } yield bag upper(n.s)')
    assert out == ["W3"]


def test_in_operator_with_list(xdb):
    assert both(xdb, "for { n <- Nums, n.v in [2, 4, 6] } yield count 1") == 3


def test_nulls_in_aggregates(xdb):
    # sum/avg/max skip nulls; count counts rows
    assert both(xdb, "for { m <- Mixed } yield sum m.v") == 4
    assert both(xdb, "for { m <- Mixed } yield avg m.v") == 2.0
    assert both(xdb, "for { m <- Mixed } yield count 1") == 3


def test_null_comparisons_are_false(xdb):
    assert both(xdb, "for { m <- Mixed, m.v > 0 } yield count 1") == 2
    assert both(xdb, "for { m <- Mixed, m.v < 100 } yield count 1") == 2


def test_like_with_null(xdb):
    assert both(xdb, 'for { m <- Mixed, m.tag like "%an%" } yield count 1') == 1


def test_exists_quantifier_via_any(xdb):
    assert both(xdb, "for { n <- Nums } yield any (n.v = 7)") is True
    assert both(xdb, "for { n <- Nums } yield all (n.v < 100)") is True
    assert both(xdb, "for { n <- Nums } yield all (n.v < 5)") is False


def test_arithmetic_precedence_end_to_end(xdb):
    assert both(xdb, "for { n <- Nums, n.v = 2 } yield sum (n.v + 3 * n.v)") == 8


def test_prod_monoid(xdb):
    assert both(xdb, "for { n <- Nums, n.v >= 1, n.v <= 4 } yield prod n.v") == 24


def test_median_even_count(xdb):
    assert both(xdb, "for { n <- Nums, n.v < 4 } yield median n.v") == 1.5


def test_record_with_nested_list_head(xdb):
    out = both(xdb, "for { n <- Nums, n.v < 2 } yield bag "
                    "(v := n.v, pair := [n.v, n.v + 1])")
    assert {"v": 0, "pair": [0, 1]} in out


def test_empty_result_aggregates(xdb):
    assert both(xdb, "for { n <- Nums, n.v > 99 } yield sum n.v") == 0
    assert both(xdb, "for { n <- Nums, n.v > 99 } yield max n.v") is None
    assert both(xdb, "for { n <- Nums, n.v > 99 } yield avg n.v") is None
    assert both(xdb, "for { n <- Nums, n.v > 99 } yield bag n.v") == []


def test_constant_only_query(xdb):
    assert both(xdb, "for { } yield sum 41") == 41
    assert both(xdb, "for { false } yield count 1") == 0


def test_cross_product_no_join_key(xdb):
    out = both(xdb, "for { a <- Nums, b <- Mat, a.v = 0 } yield count 1")
    assert out == 2
