"""EngineContext: shared, concurrency-safe state for many tenant sessions.

The tentpole invariants: two sessions racing a cold scan produce exactly
one adopted positional map and bit-identical answers; every merge point is
adopt-or-discard against the generation token; session close is idempotent
and refcounted; the JIT compile cache is shared but keyed per codegen mode.
"""

import threading

import pytest

from repro import EngineContext, ViDa, ViDaError
from repro.caching import DataCache
from repro.core.executor.runtime import QueryRuntime

ROWS = 4000
SUM_Q = "for { t <- T, t.age > 40 } yield sum t.score"
BAG_Q = "for { t <- T, t.age > 40 } yield bag (id := t.id, s := t.score)"


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "t.csv"
    with open(path, "w") as fh:
        fh.write("id,age,score\n")
        for i in range(ROWS):
            fh.write(f"{i},{20 + i % 60},{i * 3 % 101}\n")
    return str(path)


def serial_answer(csv_path, query):
    db = ViDa()
    db.register_csv("T", csv_path)
    try:
        return db.query(query).value
    finally:
        db.close()


# ---------------------------------------------------------------------------
# the cold-scan race: one winner, zero corruption, identical answers
# ---------------------------------------------------------------------------


def test_two_sessions_race_cold_scan(csv_path):
    expected = serial_answer(csv_path, BAG_Q)
    ctx = EngineContext()
    sessions = [ViDa(context=ctx) for _ in range(2)]
    sessions[0].register_csv("T", csv_path)

    barrier = threading.Barrier(2)
    results, errors = [None, None], []

    def run(i):
        try:
            barrier.wait()
            results[i] = sessions[i].query(BAG_Q).value
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # bit-identical to serial execution, for both racers
    assert results[0] == expected
    assert results[1] == expected
    # exactly one positional map was adopted; the loser (if it also ran
    # cold) discarded its partial instead of corrupting the winner's
    assert ctx.stats.posmap_adoptions == 1
    plugin = ctx.catalog.get("T").plugin
    assert plugin.posmap.complete
    assert len(plugin.posmap.row_offsets) == ROWS
    for s in sessions:
        s.close()


def test_many_sessions_race_cold_scan_sum(csv_path):
    expected = serial_answer(csv_path, SUM_Q)
    ctx = EngineContext()
    n = 6
    sessions = [ViDa(context=ctx) for _ in range(n)]
    sessions[0].register_csv("T", csv_path)
    barrier = threading.Barrier(n)
    results = [None] * n

    def run(i):
        barrier.wait()
        results[i] = sessions[i].query(SUM_Q).value

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results == [expected] * n
    assert ctx.stats.posmap_adoptions == 1
    for s in sessions:
        s.close()


def test_forced_cold_rescan_discards_partial(csv_path):
    """A cold scan finishing after the map is complete discards its partial
    (adopt-or-discard), leaving the winner's map untouched."""
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("T", csv_path)
    db.query(SUM_Q)  # builds + adopts the positional map
    assert ctx.stats.posmap_adoptions == 1
    plugin = ctx.catalog.get("T").plugin
    before = plugin.posmap

    rt = QueryRuntime(ctx.catalog, DataCache(0), engine=ctx)
    for _ in rt.csv_chunks("T", ("age",), access="cold"):
        pass
    assert ctx.stats.posmap_discards >= 1
    assert ctx.catalog.get("T").plugin.posmap is before
    assert before.complete
    db.close()


# ---------------------------------------------------------------------------
# generation tokens: stale scans never poison fresh state
# ---------------------------------------------------------------------------


def _mutate(csv_path):
    with open(csv_path, "a") as fh:
        fh.write(f"{10**6},99,1\n")


def test_stale_cache_admission_dropped(csv_path):
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("T", csv_path)
    rt = QueryRuntime(ctx.catalog, ctx.cache, engine=ctx)
    rt.touch_generation("T")

    _mutate(csv_path)
    assert ctx.catalog.check_freshness("T") is False  # generation bumped

    rt.admit_columns("T", ("age",), ([1, 2, 3],))
    assert ctx.stats.stale_admissions_dropped == 1
    assert not ctx.cache.peek("T", ["age"])
    db.close()


def test_stale_posmap_partial_discarded(csv_path):
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("T", csv_path)
    plugin = ctx.catalog.get("T").plugin
    rt = QueryRuntime(ctx.catalog, DataCache(0), engine=ctx)
    rt.touch_generation("T")
    old_map = plugin.posmap
    partial = plugin.new_posmap_partial()

    _mutate(csv_path)
    assert ctx.catalog.check_freshness("T") is False

    assert rt._adopt_posmap("T", [partial], expect=old_map) is False
    assert ctx.stats.posmap_discards == 1
    assert not plugin.posmap.complete  # the fresh map stayed pristine
    db.close()


def test_check_freshness_bumps_generation_exactly_once(csv_path):
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("T", csv_path)
    entry = ctx.catalog.get("T")
    gen0 = entry.generation
    _mutate(csv_path)

    n = 8
    barrier = threading.Barrier(n)
    results = [None] * n

    def run(i):
        barrier.wait()
        results[i] = ctx.catalog.check_freshness("T")

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # exactly one thread observed (and applied) the mutation; the rest
    # re-checked under the lock and saw the refreshed fingerprint
    assert results.count(False) == 1
    assert entry.generation != gen0
    assert ctx.catalog.check_freshness("T") is True  # stable afterwards
    db.close()


# ---------------------------------------------------------------------------
# session lifecycle: refcounting, idempotent close, clear errors
# ---------------------------------------------------------------------------


def test_session_refcount_and_idempotent_close(csv_path):
    ctx = EngineContext()
    a = ViDa(context=ctx)
    b = ViDa(context=ctx)
    a.register_csv("T", csv_path)
    assert ctx.session_count == 2

    a.close()
    a.close()  # idempotent: no double-detach
    assert a.closed
    assert ctx.session_count == 1
    with pytest.raises(ViDaError, match="closed"):
        a.query(SUM_Q)

    # the surviving tenant keeps the shared state
    assert b.query(SUM_Q).value == serial_answer(csv_path, SUM_Q)
    b.close()
    assert ctx.session_count == 0
    assert not ctx.closed  # context outlives its sessions

    c = ViDa(context=ctx)  # re-attach after everyone left
    assert c.query(SUM_Q).value == serial_answer(csv_path, SUM_Q)
    c.close()

    ctx.close()
    with pytest.raises(ViDaError, match="closed"):
        ViDa(context=ctx)


def test_private_context_closes_with_session(csv_path):
    db = ViDa()
    db.register_csv("T", csv_path)
    db.query(SUM_Q)
    ctx = db.engine_context
    db.close()
    assert ctx.closed
    with pytest.raises(ViDaError, match="closed"):
        db.query(SUM_Q)


def test_worker_pool_shuts_down_with_last_session():
    ctx = EngineContext()
    a = ViDa(context=ctx, backend="process", parallelism=2)
    b = ViDa(context=ctx, backend="process", parallelism=2)
    pool = ctx.worker_pool(2)
    a.close()
    assert ctx._pool is pool  # b is still attached
    b.close()
    assert ctx._pool is None  # last one out shut it down


def test_context_owns_cache_configuration():
    ctx = EngineContext(cache_budget_bytes=1 << 20)
    with pytest.raises(ViDaError, match="EngineContext"):
        ViDa(context=ctx, cache_budget_bytes=1 << 10)
    ctx.close()


# ---------------------------------------------------------------------------
# shared JIT compile cache, per-session codegen modes
# ---------------------------------------------------------------------------


def test_compile_cache_shared_across_tenants(csv_path):
    ctx = EngineContext()
    a = ViDa(context=ctx)
    b = ViDa(context=ctx)
    a.register_csv("T", csv_path)
    a.query(SUM_Q)  # cold plan shape
    a.query(SUM_Q)  # warm/cache plan shape, now compiled
    hits_before = ctx.jit.stats.cache_hits
    b.query(SUM_Q)  # same warm plan shape → b rides a's compilation
    assert ctx.jit.stats.cache_hits > hits_before
    a.close()
    b.close()


def test_vector_filter_modes_do_not_cross_serve(csv_path):
    expected = serial_answer(csv_path, BAG_Q)
    ctx = EngineContext()
    a = ViDa(context=ctx, vector_filters=True)
    b = ViDa(context=ctx, vector_filters=False)
    a.register_csv("T", csv_path)
    assert a.query(BAG_Q).value == expected
    assert b.query(BAG_Q).value == expected
    assert a.query(BAG_Q).value == expected
    a.close()
    b.close()


# ---------------------------------------------------------------------------
# per-tenant cache-write quotas
# ---------------------------------------------------------------------------


def test_cache_write_quota_denies_admissions(csv_path):
    ctx = EngineContext()
    quota = ViDa(context=ctx, cache_write_quota_bytes=0)
    quota.register_csv("T", csv_path)
    expected = serial_answer(csv_path, SUM_Q)
    assert quota.query(SUM_Q).value == expected
    assert quota.cache.writes_denied >= 1
    assert len(ctx.cache) == 0  # nothing admitted into the shared cache
    quota.close()


def test_quota_tenant_still_reads_shared_warm_state(csv_path):
    ctx = EngineContext()
    warm = ViDa(context=ctx)
    quota = ViDa(context=ctx, cache_write_quota_bytes=0)
    warm.register_csv("T", csv_path)
    warm.query(SUM_Q)
    warm.query(SUM_Q)  # ensure the cache entry exists and is warm
    assert len(ctx.cache) > 0
    r = quota.query(SUM_Q)
    assert r.value == serial_answer(csv_path, SUM_Q)
    assert r.stats.cache_only  # reads pass through the quota view
    warm.close()
    quota.close()
