"""In-place update and append handling (paper §2.1).

"The workloads we deal with are typically read-only or append-like (i.e.,
more data files are exposed) … ViDa currently handles the cases of in-place
updates transparently. Updates to the underlying files result in dropping
the auxiliary structures affected."
"""

import json
import os

import pytest

from repro import ViDa
from repro.formats.csvfmt import append_csv, write_csv


@pytest.fixture()
def growing_csv(tmp_path):
    path = tmp_path / "grow.csv"
    write_csv(path, ["id", "v"], [(i, i * 10) for i in range(10)])
    return str(path)


def test_append_detected_and_included(growing_csv):
    db = ViDa()
    db.register_csv("T", growing_csv)
    assert db.query("for { t <- T } yield count 1").value == 10
    append_csv(growing_csv, [(10, 100), (11, 110)])
    os.utime(growing_csv, ns=(999, 999))
    result = db.query("for { t <- T } yield count 1")
    assert result.value == 12
    assert not result.stats.cache_only  # stale cache was invalidated


def test_posmap_rebuilt_after_update(growing_csv):
    db = ViDa()
    db.register_csv("T", growing_csv)
    db.query("for { t <- T } yield sum t.v")
    plugin = db.catalog.get("T").plugin
    assert plugin.posmap.complete
    write_csv(growing_csv, ["id", "v"], [(0, 7)])
    os.utime(growing_csv, ns=(5, 5))
    assert db.query("for { t <- T } yield sum t.v").value == 7
    assert plugin.posmap.complete  # rebuilt during the fresh cold scan
    assert len(plugin.posmap.row_offsets) == 1


def test_json_semi_index_dropped_on_update(tmp_path):
    path = tmp_path / "objs.json"
    with open(path, "w") as fh:
        for i in range(5):
            fh.write(json.dumps({"id": i}) + "\n")
    db = ViDa()
    db.register_json("J", path)
    assert db.query("for { j <- J } yield count 1").value == 5
    with open(path, "a") as fh:
        fh.write(json.dumps({"id": 5}) + "\n")
    os.utime(path, ns=(42, 42))
    assert db.query("for { j <- J } yield count 1").value == 6


def test_unchanged_file_keeps_structures(growing_csv):
    db = ViDa()
    db.register_csv("T", growing_csv)
    db.query("for { t <- T } yield sum t.v")
    first_map = db.catalog.get("T").plugin.posmap
    db.query("for { t <- T } yield max t.v")
    assert db.catalog.get("T").plugin.posmap is first_map
