"""Statistics-driven adaptive optimizer: JIT table stats, join ordering,
measured-runtime calibration, and epoch-keyed prepared plans.

The tentpole invariants: statistics collected as scan byproducts are
bit-identical whatever the degree of parallelism or morsel substrate that
collected them; stale partials die at the generation gate exactly like
posmaps and value indexes; the enumerator's join order comes from the
numbers, not the query text; and a prepared plan is never served across a
stats/calibration shift.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro import EngineContext, ViDa
from repro.caching import DataCache
from repro.core.executor.runtime import QueryRuntime
from repro.core.optimizer import cost as C
from repro.core.optimizer import enumerator as E
from repro.stats import ColumnSketch, CostCalibration, ScanTiming, StatsPartial

ROWS = 20000
SUM_Q = "for { t <- T, t.age > 40 } yield sum t.score"


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    # padded wide enough that the cost model actually picks process morsels
    path = tmp_path_factory.mktemp("adaptive") / "t.csv"
    with open(path, "w") as fh:
        fh.write("id,age,score,pad\n")
        for i in range(ROWS):
            fh.write(f"{i},{20 + i % 60},{i * 3 % 101},{'x' * 64}\n")
    return str(path)


@pytest.fixture
def join_dir(tmp_path):
    with open(tmp_path / "big.csv", "w") as fh:
        fh.write("id,k,v\n")
        for i in range(9000):
            fh.write(f"{i},{i % 40},{i % 7}\n")
    with open(tmp_path / "mid.csv", "w") as fh:
        fh.write("id,k\n")
        for i in range(1500):
            fh.write(f"{i},{i % 40}\n")
    with open(tmp_path / "small.csv", "w") as fh:
        fh.write("k,name\n")
        for i in range(40):
            fh.write(f"{i},n{i}\n")
    return tmp_path


# ---------------------------------------------------------------------------
# collection: bit-identical statistics across DoP and morsel substrate
# ---------------------------------------------------------------------------


def collect_snapshot(csv_path, parallelism, backend):
    ctx = EngineContext()
    db = ViDa(context=ctx, parallelism=parallelism, backend=backend)
    db.register_csv("T", csv_path)
    r = db.query(SUM_Q)
    snap = ctx.table_stats.snapshot()
    db.close()
    ctx.close()
    return r.value, snap, r.decisions


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_stats_bit_identical_across_dop(csv_path, backend):
    """The KMV sketches keep the K smallest hashes ever inserted and
    min/max/count merges are order-free, so serial, 2-way and 4-way
    collection — threads or worker processes — produce the same bytes."""
    ref_value, ref_snap, _ = collect_snapshot(csv_path, 1, "thread")
    assert ref_snap["T"][0] == ROWS  # exact row count from the complete scan
    cols = dict(ref_snap["T"][1])
    assert set(cols) == {"age", "score"}  # only the touched fields
    for dop in (2, 4):
        value, snap, decisions = collect_snapshot(csv_path, dop, backend)
        # the requested substrate really ran — no silent serial fallback
        assert decisions.parallel.get("t", 1) == dop
        if backend == "process":
            assert decisions.parallel_backend.get("t") == "process"
        assert value == ref_value
        assert snap == ref_snap, f"stats differ at dop={dop}/{backend}"


def test_ndv_and_minmax_are_exactish(csv_path):
    _, snap, _ = collect_snapshot(csv_path, 1, "thread")
    cols = dict(snap["T"][1])
    # age ∈ [20, 79], 60 distinct; under K=256 the sketch is exact
    count, nulls, num_min, num_max, _smin, _smax, hashes = cols["age"]
    assert (count, nulls) == (ROWS, 0)
    assert (num_min, num_max) == (20, 79)
    assert len(hashes) == 60


def test_concurrent_sessions_adopt_stats_once(csv_path):
    ctx = EngineContext()
    sessions = [ViDa(context=ctx) for _ in range(4)]
    sessions[0].register_csv("T", csv_path)
    barrier = threading.Barrier(4)
    results = [None] * 4

    def run(i):
        barrier.wait()
        results[i] = sessions[i].query(SUM_Q).value

    threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(results)) == 1
    # adopt-or-skip: whoever lost the race changed nothing, so the stored
    # stats match a serial run bit for bit
    assert ctx.table_stats.snapshot() == collect_snapshot(csv_path, 1, "thread")[1]
    for s in sessions:
        s.close()


# ---------------------------------------------------------------------------
# generation gate: stale stats partials never poison fresh state
# ---------------------------------------------------------------------------


def test_stale_stats_partial_discarded(csv_path, tmp_path):
    # private copy: this test mutates the file
    path = tmp_path / "t.csv"
    path.write_text(open(csv_path).read())
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("T", str(path))
    rt = QueryRuntime(ctx.catalog, DataCache(0), engine=ctx,
                      table_stats=ctx.table_stats)
    rt.touch_generation("T")  # scan-start capture, pre-mutation

    with open(path, "a") as fh:
        fh.write(f"{10**6},99,1\n")
    assert ctx.catalog.check_freshness("T") is False  # generation bumped

    for _ in rt.csv_chunks("T", ("age",), access="cold"):
        pass
    assert ctx.stats.stats_discards >= 1
    assert ctx.stats.stats_adoptions == 0
    gen = ctx.catalog.get("T").generation
    assert ctx.table_stats.peek("T", gen) is None  # nothing stale surfaced
    db.close()


def test_registry_evicts_on_generation_mismatch():
    from repro.stats import StatsRegistry

    reg = StatsRegistry()
    part = StatsPartial(("a",))
    part.advance(0, 100)
    part.record(0, {"a": list(range(100))})
    assert reg.adopt("S", 1, part, complete=True)
    assert reg.peek("S", 1).row_count == 100
    assert reg.peek("S", 2) is None          # new generation: evicted
    assert reg.peek("S", 1) is None          # and gone for good
    v = reg.version
    assert not reg.adopt("S", 3, StatsPartial(()), complete=False)
    assert reg.version == v  # empty partial changed nothing


# ---------------------------------------------------------------------------
# planning: stats-driven join order, selectivities, EXPLAIN surfacing
# ---------------------------------------------------------------------------


def join_query():
    return ("for { b <- Big, m <- Mid, s <- Small, b.k = m.k, m.k = s.k } "
            "yield sum 1")


def test_join_order_from_stats_not_syntax(join_dir):
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("Big", str(join_dir / "big.csv"))
    db.register_csv("Mid", str(join_dir / "mid.csv"))
    db.register_csv("Small", str(join_dir / "small.csv"))
    db.query(join_query())  # collects stats as byproducts
    r = db.query(join_query())
    # syntax order is b, m, s; with exact row counts the enumerator
    # drives from the smallest relation instead
    assert r.decisions.join_order[0] == "s"
    assert r.decisions.join_order != ["b", "m", "s"]
    # EXPLAIN surfaces per-step cardinalities and per-scan estimates
    assert len(r.decisions.join_cards) == len(r.decisions.join_order)
    assert r.decisions.est_rows["b"] == 9000.0
    assert "est[" in r.decisions.summary()
    assert "(~" in r.decisions.summary()
    assert "est_rows=" in r.plan_text
    db.close()


def test_stats_selectivity_bounds_estimates(csv_path):
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("T", csv_path)
    db.query(SUM_Q)
    # age ∈ [20, 79]: a probe outside the observed domain estimates empty
    r = db.query("for { t <- T, t.age = 500 } yield sum t.score")
    assert r.decisions.est_rows["t"] == 1.0  # floor(max(1, rows × 0))
    # and an in-domain range uses min/max interpolation, not the 0.3 guess
    r2 = db.query("for { t <- T, t.age > 75 } yield sum t.score")
    assert r2.decisions.est_rows["t"] < 0.2 * ROWS
    db.close()


def test_adaptive_off_is_the_syntax_baseline(join_dir):
    db = ViDa(adaptive_stats=False)
    db.register_csv("Big", str(join_dir / "big.csv"))
    db.register_csv("Mid", str(join_dir / "mid.csv"))
    db.register_csv("Small", str(join_dir / "small.csv"))
    db.query(join_query())
    r = db.query(join_query())
    assert r.decisions.join_cards == []          # no cardinality estimates
    assert db.engine_context.table_stats.snapshot() == {}  # no collection
    assert db.engine_context.calibration.version == 0      # no learning
    db.close()


def test_missing_cost_factor_is_surfaced(csv_path, monkeypatch):
    monkeypatch.delitem(C.COST_FACTORS, ("csv", "cold"))
    db = ViDa(adaptive_stats=False)  # no calibration to paper over the hole
    db.register_csv("T", csv_path)
    r = db.query(SUM_Q)
    assert any("no cost factor" in n and "csv" in n for n in r.decisions.notes)
    db.close()


# ---------------------------------------------------------------------------
# the enumerator itself
# ---------------------------------------------------------------------------


class _U:
    def __init__(self, var, est_rows, est_cost=0.0, kind="scan",
                 deps=frozenset()):
        self.var, self.kind, self.deps = var, kind, deps
        self.est_rows, self.est_cost = float(est_rows), float(est_cost)


def test_enumerator_prefers_selective_start():
    units = [_U("a", 9000), _U("m", 1500), _U("s", 40)]
    edges = {E.edge_key("a", "m"): 1 / 40, E.edge_key("m", "s"): 1 / 40}
    ordered = E.enumerate_order(units, edges)
    assert [u.var for u in ordered] == ["s", "m", "a"]
    cards = E.estimate_cards(ordered, edges)
    assert len(cards) == 3 and cards[0] == 40.0


def test_enumerator_avoids_cross_joins():
    # s joins only a; putting m before a would cross-join
    units = [_U("a", 1000), _U("m", 500), _U("s", 10)]
    edges = {E.edge_key("s", "a"): 0.001, E.edge_key("a", "m"): 0.01}
    ordered = [u.var for u in E.enumerate_order(units, edges)]
    assert ordered.index("a") < ordered.index("m")


def test_enumerator_respects_unnest_deps():
    units = [_U("u", 10, kind="unnest", deps=frozenset({"a"})), _U("a", 5)]
    ordered = E.enumerate_order(units, edges={})
    assert [u.var for u in ordered] == ["a", "u"]


def test_enumerator_cutoffs():
    assert E.enumerate_order([_U("a", 1)], {}) is None  # nothing to order
    many = [_U(f"v{i}", 10) for i in range(E.MAX_DP_UNITS + 1)]
    assert E.enumerate_order(many, {}) is None          # past the DP cutoff


def test_enumerator_deterministic_tiebreak():
    units = [_U("b", 100), _U("a", 100)]
    for _ in range(3):
        assert [u.var for u in E.enumerate_order(list(units), {})][0] == "a"


# ---------------------------------------------------------------------------
# measured-runtime calibration
# ---------------------------------------------------------------------------


def _predicted_ms(cal, t):
    return cal.estimated_ms(cal._predicted_units(t, cal.factors[(t.format,
                                                                 t.access)]))


def test_calibration_constants_move_and_ratio_tightens():
    cal = CostCalibration()
    base = cal.factors[("csv", "cold")]
    t = ScanTiming("T", "csv", "cold", rows=10000, nfields=2, chunks=3,
                   seconds=0.5)
    assert abs(math.log(0.5e3 / _predicted_ms(cal, t))) > 0.0
    before = abs(math.log(0.5e3 / _predicted_ms(cal, t)))
    for _ in range(6):
        assert cal.observe([t]) == 1
    after = abs(math.log(0.5e3 / _predicted_ms(cal, t)))
    assert after < before          # est vs measured converges
    assert cal.factors[("csv", "cold")] != base
    assert cal.unit_ms is not None
    assert cal.version >= 6


def test_calibration_noise_floor_and_unknown_pairs():
    cal = CostCalibration()
    tiny = ScanTiming("T", "csv", "cold", rows=8, nfields=1, chunks=1,
                      seconds=0.2)
    unknown = ScanTiming("T", "xml", "cold", rows=5000, nfields=1, chunks=1,
                         seconds=0.2)
    assert cal.observe([tiny, unknown]) == 0
    assert cal.version == 0 and cal.unit_ms is None


def test_calibration_drift_is_clamped():
    cal = CostCalibration()
    base = cal.factors[("csv", "cold")]
    slow = ScanTiming("T", "csv", "cold", rows=50000, nfields=4, chunks=10,
                      seconds=600.0)
    for _ in range(100):
        cal.observe([slow])
    assert cal.factors[("csv", "cold")] <= base * 8.0 + 1e-9


def test_queries_feed_calibration(csv_path):
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("T", csv_path)
    v0 = ctx.calibration.version
    r = db.query(SUM_Q)
    assert ctx.calibration.version > v0      # serial cold scan was timed
    assert ctx.calibration.unit_ms is not None
    assert r.stats.est_cost_units > 0
    r2 = db.query(SUM_Q)
    assert r2.stats.est_ms > 0               # estimate now in wall-clock ms
    db.close()


# ---------------------------------------------------------------------------
# epoch-keyed prepared plans: never serve a plan across a stats shift
# ---------------------------------------------------------------------------


def test_prepared_plan_replans_when_epoch_moves(csv_path, tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(open(csv_path).read())
    ctx = EngineContext()
    db = ViDa(context=ctx)
    db.register_csv("T", str(path))

    r1 = db.query(SUM_Q)
    assert not r1.stats.plan_cached          # first sight: planned
    r2 = db.query(SUM_Q)
    assert not r2.stats.plan_cached          # stats + cache moved the epoch
    r3 = db.query(SUM_Q)
    assert r3.stats.plan_cached              # steady state: reuse
    assert r3.value == r1.value
    assert r3.stats.plan_ms < r2.stats.plan_ms or r3.stats.plan_ms < 1.0

    with open(path, "a") as fh:
        fh.write(f"{10**6},99,1\n")
    r4 = db.query(SUM_Q)                     # generation bump → replan
    assert not r4.stats.plan_cached
    assert r4.value != r1.value              # and the answer sees the new row
    db.close()


def test_prepared_plan_reuse_does_not_leak_decisions(csv_path):
    ctx = EngineContext()
    db = ViDa(context=ctx, default_engine="auto")
    db.register_csv("T", csv_path)
    for _ in range(3):
        db.query(SUM_Q)
    r = db.query(SUM_Q)
    assert r.stats.plan_cached
    # the cached entry's decisions are cloned per execution: engine_choice
    # set on one result never accretes into the stored copy
    assert r.decisions.engine_choice.startswith(("jit", "static"))
    assert db._prepared[SUM_Q][4].engine_choice == ""
    db.close()


# ---------------------------------------------------------------------------
# per-query engine selection (default_engine="auto")
# ---------------------------------------------------------------------------


def test_auto_engine_picks_static_for_tiny_jit_for_big(csv_path, tmp_path):
    tiny = tmp_path / "tiny.csv"
    with open(tiny, "w") as fh:
        fh.write("id,v\n")
        for i in range(20):
            fh.write(f"{i},{i}\n")
    ctx = EngineContext()
    db = ViDa(context=ctx, default_engine="auto")
    db.register_csv("T", csv_path)
    db.register_csv("Tiny", str(tiny))

    small = db.query("for { x <- Tiny } yield sum x.v")
    assert small.stats.engine == "static"
    assert "static" in small.decisions.engine_choice
    compilations = ctx.jit.stats.compilations
    assert compilations == 0                 # no codegen paid for 20 rows

    big = db.query(SUM_Q)
    assert big.stats.engine == "jit"
    assert "jit" in big.decisions.engine_choice
    assert ctx.jit.stats.compilations > compilations
    db.close()


def test_auto_engine_reuses_cached_compilations(csv_path):
    ctx = EngineContext()
    warm = ViDa(context=ctx)                 # compiles the plan shape
    warm.register_csv("T", csv_path)
    warm.query(SUM_Q)
    warm.query(SUM_Q)

    auto = ViDa(context=ctx, default_engine="auto")
    r = auto.query(SUM_Q)
    assert r.stats.engine == "jit"
    assert "cached" in r.decisions.engine_choice
    warm.close()
    auto.close()


# ---------------------------------------------------------------------------
# sketch unit behaviour
# ---------------------------------------------------------------------------


def test_sketch_merge_order_independent():
    a, b, c = ColumnSketch(), ColumnSketch(), ColumnSketch()
    for i in range(5000):
        a.add(i)
    for i in range(2500, 7500):
        b.add(i)
    for i in range(7500):
        c.add(i)
    a.merge(b)
    assert a.snapshot() == c.snapshot()
    assert 6000 <= a.estimate() <= 9000      # KMV within ~20 % at K=256


def test_sketch_collapses_equal_python_values():
    s = ColumnSketch()
    for v in (1, 1.0, True, "1"):
        s.add(v)
    # 1 == 1.0 == True in Python; "1" differs — exactly two distincts
    assert s.estimate() == 2
