"""Physical-plan rendering and plan-utility tests."""

from repro.core.physical import (
    PhysExprScan,
    PhysFilter,
    PhysHashJoin,
    PhysNLJoin,
    PhysReduce,
    PhysScan,
    PhysUnnest,
    explain_physical,
    plan_scans,
)
from repro.mcc import ast as A
from repro.mcc.monoids import get_monoid


def sample_plan():
    left = PhysScan(source="S", var="s", format="csv", fields=("id", "v"),
                    access="cold", populate=("id", "v"),
                    pred=A.BinOp(">", A.Proj(A.Var("s"), "v"), A.Const(1)))
    right = PhysScan(source="T", var="t", format="json",
                     fields=("id",), access="warm", bind_whole=True)
    join = PhysHashJoin(
        build=left, probe=right,
        build_keys=(A.Proj(A.Var("s"), "id"),),
        probe_keys=(A.Proj(A.Var("t"), "id"),),
        residual=A.Const(True),
    )
    unnest = PhysUnnest(join, A.Proj(A.Var("t"), "items"), "i")
    filt = PhysFilter(unnest, A.BinOp("=", A.Proj(A.Var("i"), "k"), A.Const(2)))
    nl = PhysNLJoin(outer=filt, inner=PhysExprScan(A.ListLit((A.Const(1),)), "e"),
                    pred=None)
    return PhysReduce(nl, get_monoid("bag"), A.Var("i"))


def test_explain_physical_mentions_everything():
    text = explain_physical(sample_plan())
    for fragment in (
        "Reduce[bag i]", "NLJoin", "Filter[i.k = 2]", "Unnest[t.items as i",
        "HashJoin[s.id=t.id]", "access=cold", "populate=[id, v]->columns",
        "access=warm", "whole", "ExprScan",
    ):
        assert fragment in text, fragment


def test_plan_scans_collects_in_preorder():
    scans = plan_scans(sample_plan())
    assert [s.source for s in scans] == ["S", "T"]


def test_bound_vars_through_plan():
    plan = sample_plan()
    assert set(plan.child.bound_vars()) == {"s", "t", "i", "e"}
