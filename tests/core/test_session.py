"""ViDa session end-to-end tests over raw files."""

import os

import pytest

from repro import TypeCheckError, ViDa
from repro.formats import write_csv


def test_simple_filter_aggregate(db):
    r = db.query("for { p <- Patients, p.age >= 60 } yield count 1")
    assert isinstance(r.value, int) and r.value > 0


def test_projection_query(db):
    r = db.query(
        'for { p <- Patients, p.gender = "f", p.age < 30 } '
        "yield bag (id := p.id, age := p.age)"
    )
    assert all(row["age"] < 30 for row in r.value)
    assert all(isinstance(row["id"], int) for row in r.value)


def test_three_way_join(db):
    r = db.query(
        "for { p <- Patients, g <- Genetics, b <- BrainRegions, "
        "p.id = g.id, g.id = b.id, p.age > 40, g.snp_a = 1 } "
        "yield bag (id := p.id, vol := b.volume_total)"
    )
    ids = {row["id"] for row in r.value}
    check = db.query(
        "for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 40, "
        "g.snp_a = 1 } yield set p.id"
    )
    assert ids == set(check.value)


def test_second_query_served_from_cache(db):
    q = "for { p <- Patients, p.age > 50 } yield avg p.protein"
    first = db.query(q)
    assert not first.stats.cache_only
    second = db.query(q)
    assert second.stats.cache_only
    assert second.value == pytest.approx(first.value)


def test_cache_respects_field_subsets(db):
    db.query("for { p <- Patients } yield bag (a := p.age, g := p.gender)")
    r = db.query("for { p <- Patients } yield set p.gender")
    assert r.stats.cache_only
    assert sorted(r.value) == ["f", "m"]


def test_json_nested_paths(db):
    r = db.query(
        "for { b <- BrainRegions, b.meta.version = 2 } "
        "yield bag (id := b.id, pipeline := b.meta.pipeline)"
    )
    assert all(row["pipeline"] in ("fsl", "spm") for row in r.value)


def test_unnest_json_arrays(db):
    r = db.query(
        "for { b <- BrainRegions, r <- b.regions, b.id = 5 } yield count 1"
    )
    assert r.value == 3


def test_whole_object_yield(db):
    r = db.query("for { b <- BrainRegions, b.id = 1 } yield bag b")
    assert r.value[0]["meta"]["version"] == 1 % 4


def test_engines_agree(db):
    queries = [
        "for { p <- Patients } yield sum p.age",
        "for { p <- Patients, g <- Genetics, p.id = g.id, g.snp_b = 2 } "
        "yield bag (id := p.id)",
        "for { b <- BrainRegions, r <- b.regions } yield max r.volume",
        "for { p <- Patients } yield topk(4) p.age",
        'for { p <- Patients, p.city = "geneva" } yield median p.age',
    ]
    for q in queries:
        jit = db.query(q).value
        static = db.query(q, engine="static").value
        assert str(jit) == str(static), q


def test_explain_contains_decisions(db):
    text = db.explain("for { p <- Patients, p.age > 50 } yield count 1")
    assert "physical" in text and "access" in text


def test_unknown_source_is_type_error(db):
    with pytest.raises(TypeCheckError):
        db.query("for { x <- Nowhere } yield count 1")


def test_unknown_field_is_type_error(db):
    with pytest.raises(TypeCheckError):
        db.query("for { p <- Patients } yield sum p.nonexistent")


def test_output_shapes(db):
    q = "for { p <- Patients, p.id < 3 } yield bag (id := p.id, age := p.age)"
    records = db.query(q, output="records").value
    assert isinstance(records[0], dict)
    tuples = db.query(q, output="tuples").value
    assert isinstance(tuples[0], tuple)
    columns = db.query(q, output="columns").value
    assert set(columns) == {"id", "age"}
    text = db.query(q, output="json").value
    assert text.count("\n") == 2
    blobs = db.query(q, output="bson").value
    from repro.formats.jsonfmt import bson

    assert bson.decode(blobs[0])["id"] == 0


def test_in_place_update_invalidates(db, patients_csv):
    db.query("for { p <- Patients } yield sum p.age")
    assert db.cache.peek("Patients", ["age"])
    # rewrite the file in place with different content
    write_csv(patients_csv, ["id", "age", "gender", "city", "protein"],
              [(0, 99, "m", "geneva", 1.0)])
    os.utime(patients_csv, ns=(1, 1))
    r = db.query("for { p <- Patients } yield sum p.age")
    assert r.value == 99
    assert not r.stats.cache_only


def test_memory_source():
    db = ViDa()
    db.register_memory("Nums", [{"v": i} for i in range(10)])
    assert db.query("for { n <- Nums, n.v > 6 } yield sum n.v").value == 24


def test_register_auto(tmp_path):
    path = tmp_path / "auto.csv"
    write_csv(path, ["a", "b"], [(1, "x"), (2, "y")])
    db = ViDa()
    db.register_auto("T", path)
    assert db.query("for { t <- T } yield count 1").value == 2


def test_query_log_and_hit_ratio(db):
    q = "for { p <- Patients } yield max p.age"
    db.query(q)
    db.query(q)
    db.query(q)
    assert 0 < db.cache_hit_ratio() < 1
    assert len(db.query_log) == 3


def test_generated_code_is_exposed(db):
    r = db.query("for { p <- Patients, p.age > 90 } yield count 1")
    assert "def _vida_query" in r.code
    assert "for " in r.code


def test_merge_of_comprehensions_top_level(db):
    # N7 splits a merged-generator comprehension into a Merge of two
    # comprehensions, which the session routes through the interpreter.
    from repro.mcc import ast as A
    from repro.mcc.monoids import get_monoid

    expr = A.Merge(
        get_monoid("sum"),
        A.Comprehension(get_monoid("sum"), A.Const(1),
                        (A.Generator("p", A.Var("Patients")),)),
        A.Comprehension(get_monoid("sum"), A.Const(1),
                        (A.Generator("g", A.Var("Genetics")),)),
    )
    assert db.query(expr).value == 120


def test_static_engine_session():
    db = ViDa(default_engine="static")
    db.register_memory("T", [{"v": 1}, {"v": 2}])
    assert db.query("for { t <- T } yield sum t.v").value == 3


def test_invalid_engine_rejected():
    with pytest.raises(Exception):
        ViDa(default_engine="quantum")
