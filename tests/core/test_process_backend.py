"""Process-pool morsel backend: kernel specs, differentials, and fallbacks.

The contract under test: ``ViDa(parallelism=N, backend="process")`` ships
picklable kernel specs to worker processes and returns the *same answer* as
the serial session on both engines — ordered bags, set dedup, grouping,
LIMIT prefixes, cleaning drops and positional maps included. Where the plan
cannot ship (dbms/device sources, sub-threshold work) it must degrade to
thread morsels or serial execution with an EXPLAIN note, never fail.
"""

from __future__ import annotations

import contextlib
import json
import math
import pickle
import random

import pytest

from repro import ViDa
from repro.cleaning import SkipPolicy
from repro.core.chunk import split_ranges
from repro.core.executor import procpool as PP
from repro.core.executor.scheduler import MorselScheduler, ProcessMorselScheduler
from repro.core.optimizer import cost as C
from repro.errors import DataFormatError, ViDaError
from repro.mcc.monoids import get_monoid

ENGINES = ("jit", "static")


# ---------------------------------------------------------------------------
# fixtures: rows padded wide enough that the cost model's file-size row
# estimate clears PROCESS_SPAWN_COST — narrow rows would (correctly) plan
# thread morsels and the differentials would not exercise worker processes
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def wide_dir(tmp_path_factory):
    rng = random.Random(7)
    d = tmp_path_factory.mktemp("procpool")

    with open(d / "wide.csv", "w") as fh:
        fh.write("id,age,gender,score,pad\n")
        for i in range(20000):
            fh.write(f"{i},{20 + (i * 7) % 60},{'mf'[i % 2]},"
                     f"{round(rng.random() * 100, 3)},{'x' * 64}\n")

    with open(d / "genes.csv", "w") as fh:
        fh.write("id,snp,pad\n")
        for i in range(15000):
            fh.write(f"{i},{i % 3},{'x' * 48}\n")

    with open(d / "brain.json", "w") as fh:
        for i in range(9000):
            fh.write(json.dumps({
                "id": i, "vol": round(rng.random() * 10, 2), "pad": "p" * 180,
            }) + "\n")

    # dirty rows appear only after the schema-inference sample window
    with open(d / "dirty.csv", "w") as fh:
        fh.write("id,age,score,pad\n")
        for i in range(15000):
            age = "oops" if (i % 97 == 0 and i > 200) else 20 + i % 50
            fh.write(f"{i},{age},{round(rng.random() * 10, 2)},{'x' * 64}\n")
    return d


@contextlib.contextmanager
def session(wide_dir, dop: int, backend: str = "process"):
    db = ViDa(parallelism=dop, backend=backend)
    db.register_csv("W", str(wide_dir / "wide.csv"))
    db.register_csv("G", str(wide_dir / "genes.csv"))
    db.register_json("B", str(wide_dir / "brain.json"))
    db.register_csv("Dirty", str(wide_dir / "dirty.csv"))
    db.set_cleaning("Dirty", SkipPolicy())
    try:
        yield db
    finally:
        db.close()


def assert_same(got, want):
    """Bit-identical, except float scalars (regrouped fp addition)."""
    if isinstance(got, float) and isinstance(want, float):
        assert math.isclose(got, want, rel_tol=1e-9), (got, want)
    else:
        assert got == want


# ---------------------------------------------------------------------------
# kernel specs are picklable and rebuild equivalent catalogs
# ---------------------------------------------------------------------------


def test_source_specs_pickle_round_trip(wide_dir):
    with session(wide_dir, 1, backend="thread") as db:
        db.register_memory("M", [{"id": 1, "v": 2.5}, {"id": 2, "v": 0.5}])
        specs = PP.catalog_specs(db.catalog)
        assert {s.name for s in specs} == {"W", "G", "B", "Dirty", "M"}
        thawed = pickle.loads(pickle.dumps(specs))
        assert thawed == specs

        rebuilt = PP.build_catalog(thawed)
        for name in ("W", "G", "Dirty"):
            parent = db.catalog.get(name).plugin
            child = rebuilt.get(name).plugin
            # the child reuses the parent's sniffed schema — no re-inference
            assert child.columns == parent.columns
            assert child.types == parent.types
        assert list(rebuilt.get("M").data) == list(db.catalog.get("M").data)


def test_kernel_spec_pickle_round_trip(wide_dir):
    with session(wide_dir, 1, backend="thread") as db:
        spec = PP.KernelSpec(
            kind="jit", payload=b"def _mw0(): pass", worker="_mw0",
            sources=PP.catalog_specs(db.catalog),
            shared=pickle.dumps({"_M": get_monoid("sum")}),
            cleaning=pickle.dumps({}), row_limit=17,
        )
        assert pickle.loads(pickle.dumps(spec)) == spec


def test_warm_csv_spec_ships_complete_posmap(wide_dir):
    with session(wide_dir, 1, backend="thread") as db:
        db.query("for { w <- W, w.age > 30 } yield count 1")
        entry = db.catalog.get("W")
        assert entry.plugin.posmap.complete
        spec = PP.source_spec(entry)
        assert spec.aux is not None
        child = PP.build_catalog((spec,)).get("W").plugin
        assert child.posmap.complete
        assert child.posmap.row_offsets == entry.plugin.posmap.row_offsets


def test_monoid_pickle_round_trips_to_registry_identity():
    for name in ("sum", "count", "max", "min", "bag", "set", "list", "avg"):
        m = get_monoid(name)
        assert pickle.loads(pickle.dumps(m)) is m


def test_shared_memory_column_round_trip():
    n = PP.SHM_MIN_ELEMENTS
    ints = list(range(n))
    packed = PP._pack_column(list(ints))
    assert isinstance(packed, PP._ShmList) and len(packed) == n
    assert PP._unpack_value(packed) == ints

    floats = [i * 0.5 for i in range(n)]
    assert PP._unpack_value(PP._pack_column(list(floats))) == floats

    # small, heterogeneous, or bool columns stay plain pickled lists
    assert PP._pack_column(list(range(10))) == list(range(10))
    mixed = [1, "a"] * n
    assert PP._pack_column(mixed) is mixed
    bools = [True] * n
    assert PP._pack_column(bools) is bools


# ---------------------------------------------------------------------------
# cost model: backend choice
# ---------------------------------------------------------------------------


def test_choose_backend_thresholds():
    # plenty of work: process pays for itself
    assert C.choose_backend("process", 50000, 4, "csv", "cold", 4) == "process"
    # thread sessions never escalate
    assert C.choose_backend("thread", 50000, 4, "csv", "cold", 4) == "thread"
    # DoP 1 has nothing to fan out
    assert C.choose_backend("process", 50000, 4, "csv", "cold", 1) == "thread"
    # total work below the spawn cost
    assert C.choose_backend("process", 5000, 1, "csv", "cold", 4) == "thread"
    # spawn covered, but per-worker share below the IPC threshold at DoP 4 —
    # the same scan at DoP 2 gives each worker a worthwhile share
    assert C.choose_backend("process", 12000, 1, "csv", "cold", 4) == "thread"
    assert C.choose_backend("process", 12000, 1, "csv", "cold", 2) == "process"


# ---------------------------------------------------------------------------
# session / EXPLAIN surface
# ---------------------------------------------------------------------------


def test_session_validates_backend():
    with pytest.raises(ViDaError):
        ViDa(backend="bogus")


def test_serial_backend_forces_dop_one(wide_dir):
    with session(wide_dir, 4, backend="serial") as db:
        r = db.query("for { w <- W, w.age > 40 } yield sum w.score")
        assert r.decisions.parallel == {}
        assert "parallel=" not in r.plan_text


def test_explain_reports_process_backend(wide_dir):
    with session(wide_dir, 4) as db:
        text = db.explain("for { w <- W, w.age > 40 } yield sum w.score")
        assert "parallel=4/process" in text, text
        r = db.query("for { w <- W, w.age > 40 } yield sum w.score")
        assert r.decisions.parallel_backend.get("w") == "process", \
            r.decisions.summary()
        assert "/process" in r.decisions.summary()


def test_thread_sessions_never_report_process(wide_dir):
    with session(wide_dir, 4, backend="thread") as db:
        r = db.query("for { w <- W, w.age > 40 } yield sum w.score")
        assert r.decisions.parallel.get("w", 1) > 1
        assert r.decisions.parallel_backend.get("w") == "thread"
        assert "/process" not in r.plan_text


# ---------------------------------------------------------------------------
# differentials: process DoP 2/4 vs serial, both engines
# ---------------------------------------------------------------------------

QUERIES = [
    "for { w <- W, w.age > 40 } yield sum w.score",
    "for { w <- W } yield avg w.score",
    "for { w <- W, w.age > 50 } yield count 1",
    "for { w <- W } yield min w.score",
    "for { w <- W } yield max w.score",
    "for { w <- W, w.age >= 60 } yield bag (id := w.id, s := w.score)",
    "for { w <- W } yield set w.gender",
    "for { w <- W, g <- G, w.id = g.id, g.snp = 1 } yield count 1",
    "for { w <- W, g <- G, w.id = g.id, g.snp = 1 } "
    "yield bag (id := w.id, s := g.snp)",
    "for { b <- B, b.vol > 5.0 } yield bag (id := b.id, v := b.vol)",
    "for { d <- Dirty } yield sum d.age",
]


@pytest.mark.parametrize("engine", ENGINES)
def test_process_results_match_serial(wide_dir, engine):
    # raw-row accounting parity is the subject here; value indexes serve
    # warm repeats from candidates (fewer raw rows) only where emission ran,
    # and process children skip emission — so pin them off on both sides
    with session(wide_dir, 1, backend="thread") as serial:
        serial.enable_indexes = False
        cold = []
        for q in QUERIES:
            r = serial.query(q, engine=engine)
            cold.append((r.value, r.stats.raw_rows, r.stats.cleaned_rows,
                         r.stats.skipped_rows))
        warm = [serial.query(q, engine=engine).value for q in QUERIES]

    for dop in (2, 4):
        with session(wide_dir, dop) as db:
            db.enable_indexes = False
            used_process = False
            for i, q in enumerate(QUERIES):
                r = db.query(q, engine=engine)
                value, raw, cleaned, skipped = cold[i]
                assert_same(r.value, value)
                assert (r.stats.raw_rows, r.stats.cleaned_rows,
                        r.stats.skipped_rows) == (raw, cleaned, skipped), q
                used_process = used_process or \
                    "process" in r.decisions.parallel_backend.values()
            assert used_process, \
                "no query used worker processes — differentials ran on threads"
            # warm/cache-served second pass must agree too
            for i, q in enumerate(QUERIES):
                assert_same(db.query(q, engine=engine).value, warm[i])


def _group_plan(parallel: int, backend: str):
    """SELECT age, SUM(score) FROM W GROUP BY age — as a PhysNest plan (the
    SQL layer encodes GROUP BY as correlated comprehensions, so the sharded
    grouping path is exercised with directly-constructed plans)."""
    from repro.core.physical import PhysNest, PhysReduce, PhysScan
    from repro.mcc import ast as A

    scan = PhysScan(
        source="W", var="w", format="csv", fields=("age", "score"),
        access="cold", parallel=parallel, backend=backend,
    )
    nest = PhysNest(
        child=scan,
        keys=(("age", A.Proj(A.Var("w"), "age")),),
        monoid=get_monoid("sum"),
        head=A.Proj(A.Var("w"), "score"),
        group_var="g",
        agg_name="total",
    )
    head = A.RecordCons((
        ("age", A.Proj(A.Var("g"), "age")),
        ("total", A.Proj(A.Var("g"), "total")),
    ))
    return PhysReduce(nest, get_monoid("bag"), head)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", ("thread", "process"))
def test_group_by_shards_across_morsels(wide_dir, engine, backend):
    from repro.caching import DataCache
    from repro.core.catalog import Catalog
    from repro.core.codegen.compiler import QueryCompiler
    from repro.core.executor.runtime import QueryRuntime
    from repro.core.executor.static_engine import StaticExecutor

    cat = Catalog()
    cat.register_csv("W", str(wide_dir / "wide.csv"))
    pool = PP.WorkerPool(4) if backend == "process" else None

    def run(parallel, run_backend):
        rt = QueryRuntime(cat, DataCache(), process_pool=pool)
        plan = _group_plan(parallel, run_backend)
        if engine == "jit":
            return QueryCompiler(cat).compile(plan)(rt)
        return StaticExecutor(cat).execute(plan, rt)

    try:
        base = run(1, "thread")
        got = run(4, backend)
    finally:
        if pool is not None:
            pool.shutdown()
    # group order (first occurrence) and per-key fold results must match the
    # serial nest; float sums regroup at morsel boundaries, hence isclose
    assert [r["age"] for r in got] == [r["age"] for r in base]
    assert len(got) == len(base) > 1
    for grow, brow in zip(got, base):
        assert_same(grow["total"], brow["total"])


@pytest.mark.parametrize("engine", ENGINES)
def test_process_limit_stops_early(wide_dir, engine):
    stmt = "SELECT w.id FROM W w WHERE w.age > 30 LIMIT 17"
    with session(wide_dir, 1, backend="thread") as serial:
        base = serial.sql(stmt, engine=engine)
    with session(wide_dir, 4) as db:
        r = db.sql(stmt, engine=engine)
        assert r.value == base.value
        assert len(r.value) == 17
        # the stop predicate cancelled morsels the window never submitted
        assert r.stats.morsels_cancelled > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_process_cleaning_drops_match_serial(wide_dir, engine):
    q = "for { d <- Dirty } yield bag (id := d.id, a := d.age)"
    with session(wide_dir, 1, backend="thread") as serial:
        base = serial.query(q, engine=engine)
        assert base.stats.skipped_rows > 0
    with session(wide_dir, 4) as db:
        r = db.query(q, engine=engine)
        # SkipPolicy pickles, so the cleaned scan still ships to processes
        assert r.decisions.parallel_backend.get("d") == "process", \
            r.decisions.summary()
        assert r.value == base.value
        assert r.stats.skipped_rows == base.stats.skipped_rows


@pytest.mark.parametrize("engine", ENGINES)
def test_process_cache_served_second_pass(wide_dir, engine):
    q = "for { w <- W } yield bag (a := w.age, s := w.score)"
    with session(wide_dir, 4) as db:
        first = db.query(q, engine=engine)
        assert first.decisions.parallel_backend.get("w") == "process"
        second = db.query(q, engine=engine)
        assert second.stats.cache_only
        assert second.value == first.value
        # cache entries live in the parent; the cache scan stays on threads
        assert second.decisions.parallel_backend.get("w", "thread") == "thread"


def test_process_cold_scan_builds_identical_posmap(wide_dir):
    with session(wide_dir, 1, backend="thread") as serial:
        serial.query("for { w <- W, w.age > 30 } yield count 1")
        pm_serial = serial.catalog.get("W").plugin.posmap

        with session(wide_dir, 4) as db:
            r = db.query("for { w <- W, w.age > 30 } yield count 1")
            assert r.decisions.parallel_backend.get("w") == "process", \
                r.decisions.summary()
            pm = db.catalog.get("W").plugin.posmap
            assert pm.complete
            assert pm.row_offsets == pm_serial.row_offsets
            assert pm.mapped_columns == pm_serial.mapped_columns


def test_worker_exception_propagates_without_hang(tmp_path):
    # one dirty value, no cleaning policy: the owning morsel raises in a
    # worker process and the query fails on both engines, promptly
    path = tmp_path / "explode.csv"
    with open(path, "w") as fh:
        fh.write("id,v,pad\n")
        for i in range(15000):
            fh.write(f"{i},{'boom' if i == 12500 else i},{'y' * 64}\n")
    for engine in ENGINES:
        db = ViDa(parallelism=4, backend="process")
        db.register_csv("X", str(path))
        try:
            assert "parallel=4/process" in \
                db.explain("for { x <- X, x.id > 10 } yield sum x.v")
            with pytest.raises(DataFormatError, match="boom"):
                db.query("for { x <- X, x.id > 10 } yield sum x.v",
                         engine=engine)
        finally:
            db.close()


# ---------------------------------------------------------------------------
# fallbacks: unshippable plans degrade, they never fail
# ---------------------------------------------------------------------------


def test_dbms_source_falls_back_to_serial_with_note(wide_dir, tmp_path):
    from repro.warehouse.rowstore import RowStore

    store = RowStore(tmp_path)
    store.create_table("T", ["id", "v"], ["int", "int"])
    store.insert_rows("T", [(i, i * 3) for i in range(500)])

    with session(wide_dir, 4) as db:
        db.register_dbms("T", store, "T")
        r = db.query("for { t <- T, t.id < 100 } yield sum t.v")
        assert r.value == sum(i * 3 for i in range(100))
        assert "t" not in r.decisions.parallel_backend
        assert any("process backend unavailable" in n and "runs serial" in n
                   for n in r.decisions.notes), r.decisions.notes

        # a plan that joins a shippable scan with a dbms source cannot ship
        # either: the driver degrades to thread morsels, with a note
        j = db.query("for { w <- W, t <- T, w.id = t.id } yield count 1")
        assert j.value == 500
        if j.decisions.parallel.get("w", 1) > 1:
            assert j.decisions.parallel_backend.get("w") == "thread"
            assert any("thread morsels" in n for n in j.decisions.notes), \
                j.decisions.notes


def test_device_charged_source_falls_back_serial(wide_dir):
    from repro.storage.device import StorageDevice

    with session(wide_dir, 4) as db:
        db.set_device("W", StorageDevice("hdd"))
        r = db.query("for { w <- W, w.age > 40 } yield count 1")
        assert "w" not in r.decisions.parallel
        assert any("process backend unavailable" in n
                   for n in r.decisions.notes), r.decisions.notes


def test_small_scan_stays_on_thread_morsels(tmp_path):
    # narrow rows: the size-based row estimate keeps work under the spawn
    # cost, so the planner declines processes and says why
    path = tmp_path / "narrow.csv"
    with open(path, "w") as fh:
        fh.write("id,v\n")
        for i in range(3000):
            fh.write(f"{i},{i % 7}\n")
    db = ViDa(parallelism=4, backend="process")
    db.register_csv("N", str(path))
    try:
        r = db.query("for { n <- N, n.id > 10 } yield sum n.v")
        if r.decisions.parallel.get("n", 1) > 1:
            assert r.decisions.parallel_backend.get("n") == "thread"
            assert any("below process-backend threshold" in n
                       for n in r.decisions.notes), r.decisions.notes
    finally:
        db.close()


# ---------------------------------------------------------------------------
# selection pushdown over populate ⊆ predicate fields (admission gated off)
# ---------------------------------------------------------------------------


def test_sel_push_when_populate_subset_of_predicate(wide_dir):
    with session(wide_dir, 1, backend="thread") as db:
        # pushdown on warm scans is the subject; a value index would
        # outbid the warm access path this test inspects
        db.enable_indexes = False
        db.query("for { w <- W, w.age > 30 } yield count 1")
        db.cache.clear()
        r = db.query("for { w <- W, w.age > 55 } yield sum w.age")
        assert r.decisions.access["w"] == "warm"
        assert r.decisions.filters.get("w") == "vec+push", \
            r.decisions.summary()
        assert any("cache population disabled" in n for n in r.decisions.notes)
        # survivors-only columns must never be admitted as complete ones
        again = db.query("for { w <- W, w.age > 55 } yield sum w.age")
        assert not again.stats.cache_only
        assert_same(again.value, r.value)
        # a query needing non-predicate fields still populates normally
        full = db.query("for { w <- W, w.age > 55 } yield sum w.score")
        assert full.decisions.filters.get("w") != "vec+push"
        served = db.query("for { w <- W, w.age > 55 } yield sum w.score")
        assert served.stats.cache_only
        assert_same(served.value, full.value)


# ---------------------------------------------------------------------------
# scheduler: bounded in-flight window, discard hook, inline fallback
# ---------------------------------------------------------------------------


def test_scheduler_bounds_inflight_morsels():
    sched = MorselScheduler(2)
    morsels = split_ranges(2000, 20, "rows")
    assert len(morsels) == 20
    out = sched.map(lambda m: m.lo, morsels, stop=lambda r: True)
    assert out == [morsels[0].lo]
    # window = max(2×DoP, 2) = 4: only 4 morsels were ever submitted before
    # the stop, so at least the 16 never-submitted ones count as cancelled
    assert 16 <= sched.cancelled <= 19


def test_scheduler_windowed_run_preserves_morsel_order():
    morsels = split_ranges(2000, 20, "rows")
    out = MorselScheduler(3).map(lambda m: (m.lo, m.hi), morsels)
    assert out == [(m.lo, m.hi) for m in morsels]


def test_scheduler_discard_hook_releases_dropped_results():
    from concurrent.futures import Future

    sched = MorselScheduler(2)
    released = []
    sched.discard = released.append
    done = Future()
    done.set_result("r1")
    pending = Future()  # never started — cancellable
    sched._drop_pending([done, pending], count=True)
    assert released == ["r1"]
    assert sched.cancelled == 1 and pending.cancelled()


def test_process_scheduler_runs_inline_without_pool():
    sched = ProcessMorselScheduler(4, None)
    assert sched.backend == "process"
    morsels = split_ranges(100, 3, "rows")
    assert sched.map(lambda m: m.lo, morsels) == [m.lo for m in morsels]
