"""Property-based differential test for incremental (delta) refresh.

Random schedules of appends / overwrites / queries run against one
long-lived session whose auxiliary structures are delta-extended or
invalidated in place; after *every* step the live answer must be
bit-identical to a cold rebuild (a fresh session over the same file).

Schedules come from a seeded ``random.Random`` so every run is replayable;
on failure the assertion message carries the executed schedule prefix —
``(seed, [op, ...])`` — which is both the reproduction recipe and the
shrunk counterexample (only the prefix up to the divergence matters).
"""

import json
import os
import random

import pytest

from repro import ViDa

INITIAL_ROWS = 150
STEPS = 12


class _Schedule:
    """Executable op log with a replayable repr."""

    def __init__(self, seed):
        self.seed = seed
        self.ops = []

    def record(self, *op):
        self.ops.append(op)

    def __repr__(self):
        return f"schedule(seed={self.seed}, ops={self.ops!r})"


def _write_csv(path, rows):
    with open(path, "w") as fh:
        fh.write("id,v\n")
        for i, v in rows:
            fh.write(f"{i},{v}\n")


def _append_csv(path, rows):
    with open(path, "a") as fh:
        for i, v in rows:
            fh.write(f"{i},{v}\n")


def _write_json(path, rows):
    with open(path, "w") as fh:
        for i, v in rows:
            fh.write(json.dumps({"id": i, "v": v}) + "\n")


def _append_json(path, rows):
    with open(path, "a") as fh:
        for i, v in rows:
            fh.write(json.dumps({"id": i, "v": v}) + "\n")


FMT = {
    "csv": (_write_csv, _append_csv, "register_csv"),
    "json": (_write_json, _append_json, "register_json"),
}

Q = "for { t <- T } yield bag (id := t.id, v := t.v)"
SUM_Q = "for { t <- T } yield sum t.v"


def cold_answers(path, fmt, engine):
    db = ViDa()
    getattr(db, FMT[fmt][2])("T", path)
    try:
        return (db.query(Q, engine=engine, output="records").value,
                db.query(SUM_Q, engine=engine).value)
    finally:
        db.close()


@pytest.mark.parametrize("engine", ["jit", "static"])
@pytest.mark.parametrize("fmt", ["csv", "json"])
@pytest.mark.parametrize("seed", [11, 42, 1337])
def test_incremental_refresh_matches_cold_rebuild(tmp_path, fmt, engine,
                                                  seed):
    write, append, register = FMT[fmt]
    path = str(tmp_path / f"t.{fmt}")
    rng = random.Random(seed)
    rows = [(i, rng.randrange(1000)) for i in range(INITIAL_ROWS)]
    write(path, rows)
    next_id = INITIAL_ROWS

    db = ViDa()
    getattr(db, register)("T", path)
    sched = _Schedule(seed)
    appended = False
    try:
        for _step in range(STEPS):
            op = rng.choice(["append", "append", "append", "overwrite",
                             "query"])
            if op == "append":
                k = rng.randint(1, 40)
                tail = [(next_id + j, rng.randrange(1000)) for j in range(k)]
                next_id += k
                rows.extend(tail)
                append(path, tail)
                sched.record("append", k)
                appended = True
            elif op == "overwrite":
                n = rng.randint(1, INITIAL_ROWS)
                rows = [(i, rng.randrange(1000)) for i in range(n)]
                next_id = n
                write(path, rows)
                sched.record("overwrite", n)
            else:
                sched.record("query")
            live_rows = db.query(Q, engine=engine, output="records").value
            live_sum = db.query(SUM_Q, engine=engine).value
            cold_rows, cold_sum = cold_answers(path, fmt, engine)
            assert (live_rows, live_sum) == (cold_rows, cold_sum), \
                f"divergence after {sched!r}"
            assert live_rows == [{"id": i, "v": v} for i, v in rows], \
                f"both engines drifted from the file after {sched!r}"
        if appended:
            # the schedule exercised the delta path, not just full rebuilds
            assert db.engine_context.stats_snapshot()["delta_refreshes"] >= 1
    finally:
        db.close()
