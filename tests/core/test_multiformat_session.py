"""Session queries across the non-CSV/JSON formats (arrays, workbooks) and
output virtualization details."""

import pytest

from repro import ViDa


@pytest.fixture()
def multi_db(array_file, xls_file, patients_csv):
    db = ViDa()
    db.register_array("Grid", array_file, ["i", "j"])
    db.register_xls("Trades", xls_file, "trades")
    db.register_xls("Risk", xls_file, "risk")
    db.register_csv("Patients", patients_csv)
    return db


def test_array_scan_aggregate(multi_db):
    # grid values: elevation = i + j over 4x5
    r = multi_db.query("for { c <- Grid } yield sum c.elevation")
    expected = sum(float(i + j) for i in range(4) for j in range(5))
    assert r.value == pytest.approx(expected)


def test_array_dimension_filter(multi_db):
    r = multi_db.query("for { c <- Grid, c.i = 2 } yield bag (j := c.j, e := c.elevation)")
    assert [row["e"] for row in sorted(r.value, key=lambda x: x["j"])] == \
        [2.0, 3.0, 4.0, 5.0, 6.0]


def test_array_whole_binding(multi_db):
    r = multi_db.query("for { c <- Grid, c.i = 0, c.j = 0 } yield bag c")
    assert r.value == [{"i": 0, "j": 0, "elevation": 0.0, "temperature": 0.0}]


def test_xls_two_sheets_join(multi_db):
    r = multi_db.query(
        "for { t <- Trades, v <- Risk, t.id = v.id } "
        "yield bag (id := t.id, amount := t.amount, var := v.var)"
    )
    assert len(r.value) == 5
    assert all(row["var"] == pytest.approx(row["id"] * 0.1) for row in r.value)


def test_xls_filter(multi_db):
    r = multi_db.query('for { t <- Trades, t.desk = "fx" } yield count 1')
    assert r.value == 5


def test_array_engines_agree(multi_db):
    q = "for { c <- Grid, c.elevation > 3.0 } yield avg c.temperature"
    assert multi_db.query(q).value == pytest.approx(
        multi_db.query(q, engine="static").value
    )


def test_cross_format_join_array_csv(multi_db):
    q = ("for { p <- Patients, c <- Grid, p.id = c.i, c.j = 1 } "
         "yield bag (id := p.id, e := c.elevation)")
    r = multi_db.query(q)
    assert sorted(row["id"] for row in r.value) == [0, 1, 2, 3]


def test_array_caching(multi_db):
    q = "for { c <- Grid } yield max c.temperature"
    first = multi_db.query(q)
    assert not first.stats.cache_only
    second = multi_db.query(q)
    assert second.stats.cache_only
    assert second.value == first.value


def test_topk_and_orderby_monoids_in_session(multi_db):
    top = multi_db.query("for { t <- Trades } yield topk(2) t.amount")
    assert top.value == sorted(top.value, reverse=True)
    assert len(top.value) == 2
