"""AS OF queries across the retention window, and O(delta) refresh.

The acceptance contract: ``AS OF GENERATION k`` returns bit-identical rows
to what the live query returned while ``k`` was the live generation, for
every generation retention still holds — and an append-only refresh
re-reads only the appended tail bytes (raw-byte accounting in the engine
stats).
"""

import json

import pytest

from repro import GenerationError, ViDa

Q = "for { t <- T } yield bag (id := t.id, v := t.v)"
ROWS = 500


def write_csv(path, n):
    with open(path, "w") as fh:
        fh.write("id,v\n")
        for i in range(n):
            fh.write(f"{i},{i * 3}\n")


def append_csv(path, start, count):
    data = "".join(f"{i},{i * 3}\n" for i in range(start, start + count))
    with open(path, "a") as fh:
        fh.write(data)
    return len(data.encode())


@pytest.fixture
def csv_path(tmp_path):
    path = str(tmp_path / "t.csv")
    write_csv(path, ROWS)
    return path


def grow_and_record(db, csv_path, appends=3, count=40):
    """Append ``appends`` tails, querying after each; returns the recorded
    {generation: live answer} map and the total appended byte count."""
    recorded, appended_bytes = {}, 0
    gens = db.generations("T")
    recorded[gens["live"]] = db.query(Q, output="records").value
    n = ROWS
    for _ in range(appends):
        appended_bytes += append_csv(csv_path, n, count)
        n += count
        answer = db.query(Q, output="records").value
        recorded[db.generations("T")["live"]] = answer
    return recorded, appended_bytes


def test_as_of_bit_identical_across_retention_window(csv_path):
    db = ViDa()
    db.register_csv("T", csv_path)
    recorded, appended_bytes = grow_and_record(db, csv_path)

    gens = db.generations("T")
    live = gens["live"]
    retained = {r["generation"] for r in gens["retained"]}
    assert retained, "history retained nothing"
    for gen, answer in recorded.items():
        if gen == live or gen in retained:
            assert db.query(Q, output="records",
                            as_of={"T": gen}).value == answer, gen

    # all appends: refresh re-read only the tails, never the whole file
    snap = db.engine_context.stats_snapshot()
    assert snap["delta_refreshes"] == 3
    assert snap["full_invalidations"] == 0
    assert snap["delta_tail_bytes"] == appended_bytes
    db.close()


def test_retention_bound_evicts_lru_with_typed_error(csv_path):
    db = ViDa(retain_generations=2)
    db.register_csv("T", csv_path)
    recorded, _ = grow_and_record(db, csv_path, appends=4)

    gens = db.generations("T")
    retained = [r["generation"] for r in gens["retained"]]
    assert len(retained) == 2  # bounded by retain_generations
    oldest = min(recorded)
    assert oldest not in retained and oldest != gens["live"]
    with pytest.raises(GenerationError) as exc:
        db.query(Q, as_of={"T": oldest})
    assert str(oldest) in str(exc.value)
    for gen in retained:  # survivors still answer exactly
        assert db.query(Q, output="records",
                        as_of={"T": gen}).value == recorded[gen]
    db.close()


def test_explain_and_decisions_show_pinned_generation(csv_path):
    db = ViDa()
    db.register_csv("T", csv_path)
    recorded, _ = grow_and_record(db, csv_path, appends=1)
    gen = min(recorded)
    r = db.query(Q, output="records", as_of={"T": gen})
    assert r.value == recorded[gen]
    assert f"generation={gen}" in r.plan_text
    assert any(f"AS OF generation {gen}" in n for n in r.decisions.notes)
    db.close()


def test_sql_as_of_matches_query_api(csv_path):
    db = ViDa()
    db.register_csv("T", csv_path)
    recorded, _ = grow_and_record(db, csv_path, appends=2)
    for gen, answer in recorded.items():
        got = db.sql(f"SELECT id, v FROM T AS OF GENERATION {gen}")
        assert got.value == answer
    db.close()


def test_rewrite_freezes_history_via_pinned_state(csv_path):
    """A non-append rewrite flips retained live-prefix snapshots to pinned
    cache fallbacks; covered projections still answer bit-identically."""
    db = ViDa()
    db.register_csv("T", csv_path)
    recorded, _ = grow_and_record(db, csv_path, appends=1)
    write_csv(csv_path, 77)  # destructive rewrite: old bytes are gone
    live_after = db.query(Q, output="records").value
    assert len(live_after) == 77

    gens = db.generations("T")
    for r in gens["retained"]:
        assert not r["live_prefix"]  # every survivor is now pinned
        gen = r["generation"]
        if gen in recorded:
            assert db.query(Q, output="records",
                            as_of={"T": gen}).value == recorded[gen]
    snap = db.engine_context.stats_snapshot()
    assert snap["full_invalidations"] >= 1
    db.close()


def test_json_as_of_and_delta_refresh(tmp_path):
    path = str(tmp_path / "t.json")
    with open(path, "w") as fh:
        for i in range(300):
            fh.write(json.dumps({"id": i, "v": i * 3}) + "\n")
    db = ViDa()
    db.register_json("T", path)
    first = db.query(Q, output="records").value
    base_gen = db.generations("T")["live"]
    tail = "".join(json.dumps({"id": i, "v": i * 3}) + "\n"
                   for i in range(300, 350))
    with open(path, "a") as fh:
        fh.write(tail)
    second = db.query(Q, output="records").value
    assert len(second) == 350

    assert db.query(Q, output="records", as_of={"T": base_gen}).value == first
    snap = db.engine_context.stats_snapshot()
    assert snap["delta_refreshes"] == 1
    assert snap["delta_tail_bytes"] == len(tail.encode())
    db.close()
