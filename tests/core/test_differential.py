"""Differential testing: JIT-generated code vs the interpreted static engine.

The two executors implement the same physical plans with completely
different mechanisms; random conjunctive queries must agree. This is the
strongest correctness check in the suite.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ViDa
from repro.formats import write_csv


@pytest.fixture(scope="module")
def diffdb(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("diff")
    import json
    import random

    rng = random.Random(7)
    p = tmp / "people.csv"
    write_csv(p, ["id", "age", "grp", "score"], [
        (i, rng.randint(18, 80), rng.choice("abc"),
         None if i % 17 == 0 else round(rng.uniform(0, 100), 2))
        for i in range(120)
    ])
    e = tmp / "events.json"
    with open(e, "w") as fh:
        for i in range(120):
            fh.write(json.dumps({
                "id": i,
                "kind": rng.choice(["scan", "visit"]),
                "score": round(rng.uniform(0, 10), 2),
                "tags": [{"t": rng.randint(0, 5)} for _ in range(rng.randint(0, 3))],
            }) + "\n")
    db = ViDa()
    db.register_csv("People", str(p))
    db.register_json("Events", str(e))
    return db


_AGG = st.sampled_from(["count 1", "sum p.age", "avg p.age", "max p.score",
                        "min p.age", "bag (id := p.id)", "set p.grp"])
_CMP = st.sampled_from([">", ">=", "<", "<=", "="])


@given(
    agg=_AGG,
    age_op=_CMP,
    age_val=st.integers(15, 85),
    use_grp=st.booleans(),
    grp=st.sampled_from("abc"),
    join=st.booleans(),
    kind=st.sampled_from(["scan", "visit"]),
)
@settings(max_examples=40, deadline=None)
def test_random_queries_agree(diffdb, agg, age_op, age_val, use_grp, grp,
                              join, kind):
    quals = [f"p.age {age_op} {age_val}"]
    gens = ["p <- People"]
    if use_grp:
        quals.append(f'p.grp = "{grp}"')
    if join:
        gens.append("e <- Events")
        quals.append("p.id = e.id")
        quals.append(f'e.kind = "{kind}"')
    q = f"for {{ {', '.join(gens + quals)} }} yield {agg}"
    jit = diffdb.query(q).value
    static = diffdb.query(q, engine="static").value
    if isinstance(jit, float):
        assert static == pytest.approx(jit)
    elif isinstance(jit, list):
        canon = lambda rows: sorted(map(repr, rows))
        assert canon(jit) == canon(static)
    else:
        assert jit == static


@given(
    vol=st.floats(min_value=0, max_value=10, allow_nan=False),
    tag=st.integers(0, 5),
)
@settings(max_examples=20, deadline=None)
def test_unnest_queries_agree(diffdb, vol, tag):
    q = (
        f"for {{ e <- Events, t <- e.tags, e.score > {round(vol, 2)}, "
        f"t.t = {tag} }} yield count 1"
    )
    assert diffdb.query(q).value == diffdb.query(q, engine="static").value


@given(limit=st.integers(0, 10))
@settings(max_examples=10, deadline=None)
def test_nested_head_comprehension_agree(diffdb, limit):
    q = (
        f"for {{ p <- People, p.id < {limit} }} yield bag "
        "(id := p.id, n := for { e <- Events, e.id = p.id } yield count 1)"
    )
    jit = diffdb.query(q).value
    static = diffdb.query(q, engine="static").value
    assert sorted(map(repr, jit)) == sorted(map(repr, static))


def test_reference_semantics_against_python(diffdb):
    """Spot-check against a hand-written Python reference."""
    rows = list(diffdb.query("for { p <- People } yield bag "
                             "(id := p.id, age := p.age, grp := p.grp, "
                             "score := p.score)").value)
    expected = sum(r["age"] for r in rows if r["grp"] == "a" and r["age"] > 40)
    got = diffdb.query(
        'for { p <- People, p.grp = "a", p.age > 40 } yield sum p.age'
    ).value
    assert got == expected

    scores = [r["score"] for r in rows if r["score"] is not None]
    assert diffdb.query("for { p <- People } yield max p.score").value == \
        pytest.approx(max(scores))
    # avg skips nulls, SQL-style
    assert diffdb.query("for { p <- People } yield avg p.score").value == \
        pytest.approx(sum(scores) / len(scores))
