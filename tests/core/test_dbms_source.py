"""DBMS-as-a-source tests (paper §2.1: ViDa over an existing store)."""

import pytest

from repro import ViDa
from repro.errors import DataFormatError
from repro.formats.dbmsfmt import DBMSSource
from repro.warehouse import ColStore, DocStore, RowStore


@pytest.fixture()
def colstore():
    store = ColStore()
    store.create_table("T", ["id", "v", "name"], ["int", "float", "string"])
    store.insert_rows("T", [(i, i * 1.5, f"n{i}") for i in range(30)])
    return store


@pytest.fixture()
def docstore():
    store = DocStore()
    store.create_collection("C")
    store.insert_many("C", [
        {"id": i, "grp": i % 3, "meta": {"v": i * 2}} for i in range(30)
    ])
    store.create_index("C", "grp")
    return store


def test_colstore_source_schema(colstore):
    src = DBMSSource(colstore, "T")
    elem = src.element_type()
    assert elem.field_names() == ("id", "v", "name")
    assert src.row_count() == 30
    assert src.indexed_fields() == ()


def test_docstore_source_index_capability(docstore):
    src = DBMSSource(docstore, "C")
    assert "grp" in src.indexed_fields()
    hits = list(src.index_lookup("grp", 1))
    assert len(hits) == 10


def test_unknown_table_rejected(colstore):
    with pytest.raises(DataFormatError):
        DBMSSource(colstore, "Nope")


def test_query_over_colstore_source(colstore):
    db = ViDa()
    db.register_dbms("T", colstore, "T")
    assert db.query("for { t <- T, t.id < 10 } yield sum t.v").value == \
        pytest.approx(sum(i * 1.5 for i in range(10)))
    # whole record projection
    rows = db.query("for { t <- T, t.id = 3 } yield bag t").value
    assert rows == [{"id": 3, "v": 4.5, "name": "n3"}]


def test_query_over_docstore_uses_index(docstore):
    db = ViDa()
    db.register_dbms("C", docstore, "C")
    result = db.query("for { c <- C, c.grp = 2 } yield count 1")
    assert result.value == 10
    explained = db.explain("for { c <- C, c.grp = 2 } yield count 1")
    assert "index lookup" in explained


def test_docstore_nested_paths(docstore):
    db = ViDa()
    db.register_dbms("C", docstore, "C")
    result = db.query("for { c <- C, c.meta.v > 50 } yield bag (id := c.id)")
    assert sorted(r["id"] for r in result.value) == list(range(26, 30))


def test_engines_agree_on_dbms_source(colstore, docstore):
    db = ViDa()
    db.register_dbms("T", colstore, "T")
    db.register_dbms("C", docstore, "C")
    q = ("for { t <- T, c <- C, t.id = c.id, c.grp = 0 } "
         "yield bag (id := t.id, v := t.v)")
    jit = db.query(q).value
    static = db.query(q, engine="static").value
    assert sorted(map(repr, jit)) == sorted(map(repr, static))
    assert len(jit) == 10


def test_rowstore_source(tmp_path):
    store = RowStore(tmp_path)
    store.create_table("R", ["id", "x"], ["int", "int"])
    store.insert_rows("R", [(i, i * i) for i in range(10)])
    db = ViDa()
    db.register_dbms("R", store, "R")
    assert db.query("for { r <- R, r.id >= 8 } yield sum r.x").value == 64 + 81
