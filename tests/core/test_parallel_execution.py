"""Morsel-driven parallel execution: schedulers, splits, and differentials.

The contract under test: a query run with ``ViDa(parallelism=N)`` returns
the *same answer* as the serial session on both engines. Results are
bit-identical except where floating-point accumulation order matters
(``sum``/``avg`` over floats regroup additions at morsel boundaries and can
differ in the last ulp) — those compare with a tight relative tolerance.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro import ViDa
from repro.cleaning import SkipPolicy
from repro.core.chunk import Morsel, split_ranges
from repro.core.executor.scheduler import MorselScheduler
from repro.core.optimizer import cost as C
from repro.errors import DataFormatError

ENGINES = ("jit", "static")
DOPS = (2, 4)


# ---------------------------------------------------------------------------
# fixtures: sources large enough that the planner actually shards them
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def big_dir(tmp_path_factory):
    rng = random.Random(42)
    d = tmp_path_factory.mktemp("parallel")

    with open(d / "patients.csv", "w") as fh:
        fh.write("id,age,gender,score\n")
        for i in range(12000):
            fh.write(f"{i},{20 + (i * 7) % 60},{'mf'[i % 2]},"
                     f"{round(rng.random() * 100, 3)}\n")

    with open(d / "genetics.csv", "w") as fh:
        fh.write("id,snp_a,snp_b,pad\n")
        for i in range(9000):
            fh.write(f"{i},{i % 3},{(i * 5) % 7},{'x' * 16}\n")

    with open(d / "brain.json", "w") as fh:
        for i in range(6000):
            fh.write(json.dumps({
                "id": i, "vol": round(rng.random() * 10, 2),
                "meta": {"v": i % 4},
            }) + "\n")

    # dirty rows appear only after the schema-inference sample window
    with open(d / "dirty.csv", "w") as fh:
        fh.write("id,age,score\n")
        for i in range(9000):
            age = "oops" if (i % 97 == 0 and i > 200) else 20 + i % 50
            fh.write(f"{i},{age},{round(rng.random() * 10, 2)}\n")
    return d


def make_session(big_dir, parallelism: int, cleaning: bool = True) -> ViDa:
    db = ViDa(parallelism=parallelism)
    db.register_csv("Patients", str(big_dir / "patients.csv"))
    db.register_csv("Genetics", str(big_dir / "genetics.csv"))
    db.register_json("Brain", str(big_dir / "brain.json"))
    db.register_csv("Dirty", str(big_dir / "dirty.csv"))
    if cleaning:
        db.set_cleaning("Dirty", SkipPolicy())
    return db


def assert_same(got, want):
    """Bit-identical, except float scalars (regrouped fp addition)."""
    if isinstance(got, float) and isinstance(want, float):
        assert math.isclose(got, want, rel_tol=1e-9), (got, want)
    else:
        assert got == want


# ---------------------------------------------------------------------------
# scheduler unit tests
# ---------------------------------------------------------------------------


def test_split_ranges_tile_exactly():
    morsels = split_ranges(10, 4, "rows")
    assert [(m.lo, m.hi) for m in morsels] == [(0, 3), (3, 6), (6, 8), (8, 10)]
    assert [m.start_row for m in morsels] == [0, 3, 6, 8]
    assert split_ranges(3, 8, "rows") == split_ranges(3, 3, "rows")
    single = split_ranges(5, 1, "spans")
    assert len(single) == 1 and (single[0].lo, single[0].hi) == (0, 5)


def test_scheduler_results_in_morsel_order():
    morsels = split_ranges(100, 4, "rows")
    out = MorselScheduler(4).map(lambda m: (m.lo, m.hi), morsels)
    assert out == [(m.lo, m.hi) for m in morsels]


def test_scheduler_serial_fallback_runs_inline():
    calls = []
    out = MorselScheduler(1).map(lambda m: calls.append(m.lo) or m.lo,
                                 split_ranges(10, 3, "rows"))
    assert out == calls  # ran on the calling thread, in order


def test_scheduler_worker_failure_fails_query_without_hang():
    morsels = split_ranges(8, 4, "rows")

    def kernel(m):
        if m.lo >= 4:
            raise ValueError(f"boom at {m.lo}")
        return m.lo

    with pytest.raises(ValueError, match="boom"):
        MorselScheduler(4).map(kernel, morsels)


def test_scheduler_rejects_bad_dop():
    with pytest.raises(ValueError):
        MorselScheduler(0)


# ---------------------------------------------------------------------------
# cost model: DoP choice
# ---------------------------------------------------------------------------


def test_choose_parallelism_scales_with_work():
    # cold raw scans shard; the same rows served from cache may not
    cold = C.choose_parallelism(8, 50000, 4, "csv", "cold")
    cache = C.choose_parallelism(8, 50000, 4, "cache", "cache")
    assert cold == 8
    assert cache <= cold
    # tiny scans never pay morsel setup
    assert C.choose_parallelism(8, 60, 1, "csv", "cold") == 1
    # serial budget wins regardless of size
    assert C.choose_parallelism(1, 10 ** 9, 10, "csv", "cold") == 1


def test_batch_aware_scan_estimate_separates_dispatch():
    est = C.estimate_scan("csv", "cold", 10000, 2, [], batch_size=1000)
    assert est.dispatch_cost == 10 * C.CHUNK_DISPATCH_COST
    assert est.total_cost == est.conversion_cost + est.dispatch_cost
    row_path = C.estimate_scan("csv", "cold", 10000, 2, [])
    assert row_path.dispatch_cost == 0.0


def test_choose_batch_size_amortises_dispatch():
    # cheap-per-value paths need deeper batches to amortise dispatch than
    # expensive ones, given the same width
    assert C.choose_batch_size(10 ** 6, 1, "cache", "cache") >= \
        C.choose_batch_size(10 ** 6, 64, "cache", "cache")
    assert C.MIN_BATCH_SIZE <= C.choose_batch_size(10 ** 6, 64) < C.MAX_BATCH_SIZE


# ---------------------------------------------------------------------------
# planner / EXPLAIN surface
# ---------------------------------------------------------------------------


def test_parallelism_is_opt_in(big_dir):
    db = make_session(big_dir, 1)
    r = db.query("for { p <- Patients, p.age > 40 } yield count 1")
    assert r.decisions.parallel == {}
    assert "parallel=" not in r.plan_text


def test_explain_shows_parallel_degree(big_dir):
    import re

    db = make_session(big_dir, 4)
    text = db.explain("for { p <- Patients, p.age > 40 } yield count 1")
    scan_dop = re.search(r"parallel=(\d+)", text)
    summary_dop = re.search(r"parallel\[p:(\d+)\]", text)
    assert scan_dop and summary_dop, text
    assert 1 < int(scan_dop.group(1)) <= 4
    assert scan_dop.group(1) == summary_dop.group(1)


def test_session_validates_parallelism(big_dir):
    from repro.errors import ViDaError

    with pytest.raises(ViDaError):
        ViDa(parallelism=0)


def test_device_charged_sources_stay_serial(big_dir):
    from repro.storage.device import StorageDevice

    db = make_session(big_dir, 4)
    db.set_device("Patients", StorageDevice("hdd"))
    r = db.query("for { p <- Patients, p.age > 40 } yield count 1")
    assert "p" not in r.decisions.parallel


# ---------------------------------------------------------------------------
# differential: DoP 2/4 vs serial, both engines
# ---------------------------------------------------------------------------

QUERIES = [
    "for { p <- Patients, p.age > 40 } yield sum p.score",
    "for { p <- Patients } yield avg p.score",
    "for { p <- Patients, p.age > 50 } yield count 1",
    "for { p <- Patients } yield min p.score",
    "for { p <- Patients } yield max p.score",
    "for { p <- Patients, p.age >= 60 } yield bag (id := p.id, s := p.score)",
    "for { p <- Patients } yield set p.gender",
    "for { p <- Patients, g <- Genetics, p.id = g.id, g.snp_a = 1 } "
    "yield count 1",
    "for { p <- Patients, g <- Genetics, p.id = g.id, g.snp_a = 1 } "
    "yield bag (id := p.id, b := g.snp_b)",
    "for { p <- Patients, b <- Brain, p.id = b.id, b.vol > 5.0 } "
    "yield bag (id := p.id, v := b.vol)",
    "for { b <- Brain } yield max b.vol",
    "for { d <- Dirty } yield sum d.age",
]


@pytest.mark.parametrize("engine", ENGINES)
def test_parallel_results_match_serial(big_dir, engine):
    serial = make_session(big_dir, 1)
    cold = []
    for q in QUERIES:
        r = serial.query(q, engine=engine)
        cold.append((r.value, r.stats.raw_rows, r.stats.cleaned_rows,
                     r.stats.skipped_rows))
    warm = [serial.query(q, engine=engine).value for q in QUERIES]

    for dop in DOPS:
        db = make_session(big_dir, dop)
        sharded_any = False
        for i, q in enumerate(QUERIES):
            r = db.query(q, engine=engine)
            value, raw, cleaned, skipped = cold[i]
            assert_same(r.value, value)
            assert (r.stats.raw_rows, r.stats.cleaned_rows,
                    r.stats.skipped_rows) == (raw, cleaned, skipped), q
            sharded_any = sharded_any or bool(r.decisions.parallel)
        assert sharded_any, "no query sharded — differential tests ran serial"
        # warm/cache-served second pass must agree too
        for i, q in enumerate(QUERIES):
            assert_same(db.query(q, engine=engine).value, warm[i])


@pytest.mark.parametrize("engine", ENGINES)
def test_parallel_cleaning_drops_match_serial(big_dir, engine):
    serial = make_session(big_dir, 1)
    base = serial.query("for { d <- Dirty } yield bag (id := d.id, a := d.age)",
                        engine=engine)
    assert base.stats.skipped_rows > 0
    for dop in DOPS:
        db = make_session(big_dir, dop)
        r = db.query("for { d <- Dirty } yield bag (id := d.id, a := d.age)",
                     engine=engine)
        assert r.value == base.value
        assert r.stats.skipped_rows == base.stats.skipped_rows


@pytest.mark.parametrize("engine", ENGINES)
def test_parallel_sql_limit_matches_serial(big_dir, engine):
    stmt = "SELECT p.id, p.age FROM Patients p WHERE p.age > 30 LIMIT 17"
    serial = make_session(big_dir, 1).sql(stmt, engine=engine)
    for dop in DOPS:
        got = make_session(big_dir, dop).sql(stmt, engine=engine)
        assert got.value == serial.value
        assert len(got.value) == 17


@pytest.mark.parametrize("engine", ENGINES)
def test_parallel_cache_served_scan(big_dir, engine):
    db = make_session(big_dir, 4)
    q = "for { p <- Patients } yield bag (a := p.age, s := p.score)"
    first = db.query(q, engine=engine)
    second = db.query(q, engine=engine)
    assert second.stats.cache_only
    assert second.value == first.value
    assert second.decisions.parallel.get("p", 1) > 1, \
        second.decisions.summary()


@pytest.mark.parametrize("engine", ENGINES)
def test_parallel_whole_binding_cache_scan_stats(engine, tmp_path):
    # regression: the split probe and the workers' cache_chunks calls must
    # share one memoised lookup even when a bind-whole scan also extracts
    # fields — a key mismatch double-counted cache_rows in the static engine
    path = tmp_path / "whole.json"
    with open(path, "w") as fh:
        for i in range(15000):
            fh.write(json.dumps({"id": i, "vol": i % 10}) + "\n")
    db = ViDa(parallelism=4)
    db.register_json("W", str(path))
    q = "for { w <- W } yield bag (v := w.vol, o := w)"
    first = db.query(q, engine=engine)
    second = db.query(q, engine=engine)
    assert second.stats.cache_only
    assert second.decisions.parallel.get("w", 1) > 1, \
        second.decisions.summary()
    assert second.stats.cache_rows == 15000
    assert second.value == first.value


def test_parallel_worker_failure_fails_query(big_dir, tmp_path):
    # one dirty value, no cleaning policy: the owning morsel raises and the
    # query fails on both engines instead of hanging or dropping data
    path = tmp_path / "explode.csv"
    with open(path, "w") as fh:
        fh.write("id,v,pad\n")
        for i in range(9000):
            fh.write(f"{i},{'boom' if i == 7500 else i},{'y' * 24}\n")
    for engine in ENGINES:
        db = ViDa(parallelism=4)
        db.register_csv("X", str(path))
        assert "parallel=" in db.explain("for { x <- X } yield sum x.v")
        with pytest.raises(DataFormatError, match="boom"):
            db.query("for { x <- X } yield sum x.v", engine=engine)


# ---------------------------------------------------------------------------
# sharded auxiliary structures
# ---------------------------------------------------------------------------


def test_parallel_cold_scan_builds_identical_posmap(big_dir):
    serial = make_session(big_dir, 1)
    serial.query("for { p <- Patients, p.age > 30 } yield count 1")
    pm_serial = serial.catalog.get("Patients").plugin.posmap

    db = make_session(big_dir, 4)
    r = db.query("for { p <- Patients, p.age > 30 } yield count 1")
    assert r.decisions.parallel.get("p", 1) > 1
    pm = db.catalog.get("Patients").plugin.posmap
    assert pm.complete
    assert pm.row_offsets == pm_serial.row_offsets
    assert pm.mapped_columns == pm_serial.mapped_columns


def test_parallel_second_scan_navigates_warm(big_dir):
    db = make_session(big_dir, 4)
    # value indexes would outbid the warm navigation this test is about
    db.enable_indexes = False
    db.query("for { p <- Patients, p.age > 30 } yield count 1")
    db.cache.clear()
    r = db.query("for { p <- Patients, p.age > 55 } yield bag p.id")
    assert r.decisions.access["p"] == "warm"
    assert r.decisions.parallel.get("p", 1) > 1
    serial = make_session(big_dir, 1)
    serial.query("for { p <- Patients, p.age > 30 } yield count 1")
    serial.cache.clear()
    assert r.value == serial.query("for { p <- Patients, p.age > 55 } "
                                   "yield bag p.id").value


def test_csv_byte_splits_partition_rows_exactly(big_dir):
    db = make_session(big_dir, 1)
    plugin = db.catalog.get("Patients").plugin
    morsels = plugin.scan_splits(5)
    assert all(m.kind == "bytes" for m in morsels)
    rows = []
    for m in morsels:
        for chunk in plugin.scan_chunks(["id"], batch_size=512, split=m):
            rows.extend(chunk.columns[0])
    assert rows == list(range(12000))


def test_json_span_splits_partition_objects_exactly(big_dir):
    db = make_session(big_dir, 1)
    plugin = db.catalog.get("Brain").plugin
    morsels = plugin.scan_splits(4)
    assert all(m.kind == "spans" for m in morsels)
    ids = []
    for m in morsels:
        for chunk in plugin.scan_chunks(("id",), batch_size=512, split=m):
            ids.extend(chunk.columns[0])
    assert ids == list(range(6000))


def test_unknown_morsel_kind_rejected(big_dir):
    db = make_session(big_dir, 1)
    bad = Morsel("spans", 0, 5)
    with pytest.raises(DataFormatError):
        list(db.catalog.get("Patients").plugin.scan_chunks(["id"], split=bad))


# ---------------------------------------------------------------------------
# chunked DBMS-source scans (all five sources speak the batch protocol)
# ---------------------------------------------------------------------------


def test_dbms_scan_chunks_tabular_and_doc_stores(tmp_path):
    from repro.formats.dbmsfmt import DBMSSource
    from repro.warehouse.colstore import ColStore
    from repro.warehouse.docstore import DocStore
    from repro.warehouse.rowstore import RowStore

    rows = [(i, f"n{i}", i * 1.5) for i in range(700)]
    rstore = RowStore(tmp_path)
    rstore.create_table("T", ["id", "name", "x"], ["int", "string", "float"])
    rstore.insert_rows("T", rows)
    cstore = ColStore()
    cstore.create_table("T", ["id", "name", "x"], ["int", "string", "float"])
    cstore.insert_rows("T", rows)
    dstore = DocStore()
    dstore.create_collection("T")
    dstore.insert_many("T", [{"id": i, "name": name, "nested": {"x": x}}
                             for i, name, x in rows])

    for store in (rstore, cstore):
        src = DBMSSource(store, "T")
        chunks = list(src.scan_chunks(["id", "x"], batch_size=256))
        assert [c.length for c in chunks] == [256, 256, 188]
        assert [v for c in chunks for v in c.column("id")] == list(range(700))
        whole = list(src.scan_chunks(None, batch_size=512))
        assert whole[0].whole[0] == {"id": 0, "name": "n0", "x": 0.0}

    doc = DBMSSource(dstore, "T")
    chunks = list(doc.scan_chunks(batch_size=300))
    assert sum(c.length for c in chunks) == 700
    assert chunks[0].whole[0]["nested"]["x"] == 0.0


@pytest.mark.parametrize("engine", ENGINES)
def test_dbms_source_queries_equal_across_engines(engine, tmp_path):
    from repro.warehouse.rowstore import RowStore

    store = RowStore(tmp_path)
    store.create_table("T", ["id", "v"], ["int", "int"])
    store.insert_rows("T", [(i, i * 3) for i in range(500)])
    db = ViDa()
    db.register_dbms("T", store, "T")
    total = db.query("for { t <- T, t.id < 100 } yield sum t.v", engine=engine)
    assert total.value == sum(i * 3 for i in range(100))
    bag = db.query("for { t <- T, t.id < 5 } yield bag (i := t.id, v := t.v)",
                   engine=engine)
    assert bag.value == [{"i": i, "v": i * 3} for i in range(5)]
