"""Fault injection: files mutating *during* an in-flight scan.

The adopt-or-discard gate (generation token + a cheap stat check against the
catalog fingerprint) must guarantee two things whatever the timing:

1. no mixed-generation rows — every row a query returns is a row of exactly
   one content version of the file, never a splice of two;
2. every stale partial is discarded — a scan that raced a mutation adopts
   nothing (no posmap, no indexes, no stats, no cache admission), and the
   *next* query rebuilds and answers bit-identically to a cold session on
   the new content.

The mutation hook wraps the plugin's ``iter_line_batches`` so the file is
rewritten between chunk boundaries of the scan itself (deterministic for
serial and thread-morsel runs); worker-process children rebuild plugins from
specs and never see the parent's wrapper, so the process-backend runs mutate
from a background thread instead.
"""

import os
import threading
import time

import pytest

from repro import ViDa

ROWS = 4000


def write_rows(path, rows):
    with open(path, "w") as fh:
        fh.write("id,v\n")
        for i, v in rows:
            fh.write(f"{i},{v}\n")


def old_rows():
    return [(i, i * 2) for i in range(ROWS)]


@pytest.fixture
def csv_path(tmp_path):
    path = str(tmp_path / "t.csv")
    write_rows(path, old_rows())
    return path


Q = "for { t <- T } yield bag (id := t.id, v := t.v)"


def ground_truth(path):
    """What a cold session answers on the file's current content."""
    db = ViDa()
    db.register_csv("GT", path)
    try:
        return db.query("for { t <- GT } yield bag (id := t.id, v := t.v)",
                        output="records").value
    finally:
        db.close()


def arm_mutation(plugin, mutate, after_batches=2):
    """Fire ``mutate()`` once, between two chunk boundaries of the next
    scan that runs through ``plugin.iter_line_batches``."""
    orig = plugin.iter_line_batches
    fired = threading.Event()

    def wrapper(*args, **kwargs):
        n = 0
        for item in orig(*args, **kwargs):
            yield item
            n += 1
            if n >= after_batches and not fired.is_set():
                fired.set()
                mutate()

    plugin.iter_line_batches = wrapper
    return fired


def _mutate_append(path):
    def go():
        time.sleep(0.005)
        with open(path, "a") as fh:
            for i in range(ROWS, ROWS + 100):
                fh.write(f"{i},{i * 2}\n")
    return go


def _mutate_truncate(path):
    def go():
        time.sleep(0.005)
        write_rows(path, old_rows()[: ROWS // 2])
    return go


def _mutate_rewrite(path):
    def go():
        time.sleep(0.005)
        # same shape, different values — catches value-level poisoning
        write_rows(path, [(i, i * 7) for i in range(ROWS)])
    return go


MUTATIONS = {
    "append": _mutate_append,
    "truncate": _mutate_truncate,
    "rewrite": _mutate_rewrite,
}


def row_universe(path):
    """Every (id, v) pair of old and current content: a returned row must
    come from exactly one version — a spliced row is in neither set."""
    universe = {(i, v) for i, v in old_rows()}
    with open(path) as fh:
        next(fh)
        for line in fh:
            i, v = line.strip().split(",")
            universe.add((int(i), int(v)))
    return universe


def check_run(db, path, result):
    universe = row_universe(path)
    for rec in result.value:
        assert (rec["id"], rec["v"]) in universe, \
            f"mixed-generation row {rec!r}"
    # follow-up query must be bit-identical to a cold rebuild on the new
    # content — stale partials that leaked would poison exactly this
    follow = db.query(Q, output="records")
    assert follow.value == ground_truth(path)


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_serial_scan_discards_stale_partials(csv_path, mutation):
    db = ViDa(batch_size=256)
    db.register_csv("T", csv_path)
    fired = arm_mutation(db.catalog.get("T").plugin,
                         MUTATIONS[mutation](csv_path))
    result = db.query(Q, output="records")
    assert fired.is_set(), "mutation hook never fired"
    snap = db.engine_context.stats_snapshot()
    # the cold scan raced the mutation: its posmap partial must be discarded
    assert snap["posmap_adoptions"] == 0
    assert snap["posmap_discards"] >= 1
    check_run(db, csv_path, result)
    db.close()


@pytest.mark.parametrize("dop", [2, 4])
@pytest.mark.parametrize("mutation", ["append", "rewrite"])
def test_thread_morsel_scan_discards_stale_partials(csv_path, dop, mutation):
    db = ViDa(batch_size=128, parallelism=dop)
    db.register_csv("T", csv_path)
    fired = arm_mutation(db.catalog.get("T").plugin,
                         MUTATIONS[mutation](csv_path))
    result = db.query(Q, output="records")
    snap = db.engine_context.stats_snapshot()
    if fired.is_set():
        assert snap["posmap_adoptions"] == 0
    check_run(db, csv_path, result)
    db.close()


@pytest.mark.parametrize("dop", [2, 4])
def test_process_morsel_scan_survives_mid_scan_append(csv_path, dop):
    # worker-process children rebuild plugins from pickled specs, so the
    # iter_line_batches wrapper can't fire there; mutate from a background
    # thread racing the query instead. Assertions hold for any timing.
    db = ViDa(batch_size=128, parallelism=dop, backend="process")
    db.register_csv("T", csv_path)
    mutator = threading.Thread(target=_mutate_append(csv_path)())
    mutator.start()
    try:
        result = db.query(Q, output="records")
    finally:
        mutator.join()
    check_run(db, csv_path, result)
    db.close()


# ---------------------------------------------------------------------------
# fingerprint regression: in-place rewrite under a frozen mtime
# ---------------------------------------------------------------------------


def test_frozen_mtime_rewrite_detected(csv_path):
    """A same-size rewrite with mtime (and size) restored must still
    invalidate: FileFingerprint folds head+tail content hashes in, so
    trusting stat alone is a regression."""
    db = ViDa()
    db.register_csv("T", csv_path)
    before = db.query("for { t <- T } yield sum t.v").value
    assert before == sum(v for _i, v in old_rows())

    st = os.stat(csv_path)
    with open(csv_path, "r+b") as fh:
        fh.seek(len("id,v\n"))
        old = fh.read(1)
        fh.seek(len("id,v\n"))
        fh.write(b"9" if old != b"9" else b"8")  # first id digit changes
    os.utime(csv_path, ns=(st.st_atime_ns, st.st_mtime_ns))  # freeze stat

    with open(csv_path) as fh:
        next(fh)
        expected = sum(int(line.split(",")[0]) for line in fh)
    after = db.query("for { t <- T } yield sum t.id").value
    assert after == expected  # stat-only freshness would serve the old sum
    assert db.query(Q, output="records").value == ground_truth(csv_path)
    db.close()
