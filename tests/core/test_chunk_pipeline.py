"""Chunk-pipeline tests: the vectorized batch scan path.

Covers the Chunk protocol itself, chunk-boundary row counts (0, 1, exactly
one batch, batch±1) differentially across both engines, cache-admission
equivalence between the row and batch paths, the planner's batch-size
decision surfacing in EXPLAIN, and the chunked access paths of every format
plugin.
"""

import json

import pytest

from repro import ViDa
from repro.caching import DataCache
from repro.core.chunk import DEFAULT_BATCH_SIZE, Chunk, chunked
from repro.core.executor.engine import JITExecutor
from repro.core.optimizer.cost import (
    MAX_BATCH_SIZE,
    MIN_BATCH_SIZE,
    choose_batch_size,
)
from repro.formats import write_csv


# -- Chunk protocol ----------------------------------------------------------


def test_chunk_from_rows_and_columns_roundtrip():
    rows = [(1, "a"), (2, "b"), (3, None)]
    ch = Chunk.from_rows(("id", "name"), rows)
    assert ch.length == len(ch) == 3
    assert ch.rows() == rows
    assert ch.column("id") == [1, 2, 3]
    ch2 = Chunk.from_columns(("id", "name"), [[1, 2, 3], ["a", "b", None]])
    assert ch2.rows() == rows


def test_chunk_single_column_iter_rows_yields_tuples():
    ch = Chunk.from_columns(("x",), [[10, 20]])
    assert ch.rows() == [(10,), (20,)]


def test_chunk_empty():
    ch = Chunk.from_rows(("a", "b"), [])
    assert ch.length == 0
    assert ch.rows() == []


def test_chunk_ragged_columns_rejected():
    with pytest.raises(ValueError):
        Chunk.from_columns(("a", "b"), [[1, 2], [1]])
    with pytest.raises(ValueError):
        Chunk.from_columns(("a",), [[1, 2]], whole=[{"a": 1}])


def test_chunk_selection_vector_compaction():
    ch = Chunk.from_columns(("a", "b"), [[1, 2, 3], ["x", "y", "z"]],
                            whole=[{"i": i} for i in range(3)])
    ch.selection = [0, 2]
    dense = ch.compact()
    assert dense.column("a") == [1, 3]
    assert dense.whole == [{"i": 0}, {"i": 2}]
    assert dense.length == 2
    # positional take on an uncompacted chunk is ambiguous → refused
    with pytest.raises(ValueError):
        ch.take([1])
    assert dense.take([1]).rows() == [(3, "z")]


def test_chunked_batches_any_iterable():
    assert list(chunked(range(5), 2)) == [[0, 1], [2, 3], [4]]
    assert list(chunked([], 3)) == []
    with pytest.raises(ValueError):
        list(chunked([1], 0))


def test_choose_batch_size_bounds():
    assert choose_batch_size(10 ** 6, 1) == MAX_BATCH_SIZE
    assert choose_batch_size(10 ** 6, 10 ** 6) == MIN_BATCH_SIZE
    wide = choose_batch_size(10 ** 6, 64)
    assert MIN_BATCH_SIZE <= wide < MAX_BATCH_SIZE
    assert wide & (wide - 1) == 0  # power of two
    # tiny sources don't plan a batch far beyond their row count
    assert choose_batch_size(10, 1) == MIN_BATCH_SIZE
    assert choose_batch_size(300, 1) < MAX_BATCH_SIZE


def test_session_rejects_bad_batch_size():
    from repro.errors import ViDaError

    for bad in (0, -4):
        with pytest.raises(ViDaError):
            ViDa(batch_size=bad)


# -- chunk-boundary row counts, differential across engines ------------------

BATCH = 8


def _csv_db(tmp_path, nrows, batch_size=BATCH):
    path = tmp_path / f"rows{nrows}.csv"
    rows = [(i, 20 + i % 50, round(i * 0.5, 2) if i % 7 else None)
            for i in range(nrows)]
    write_csv(path, ["id", "age", "score"], rows)
    db = ViDa(batch_size=batch_size)
    db.register_csv("T", str(path), columns=["id", "age", "score"],
                    types=["int", "int", "float"])
    return db, rows


@pytest.mark.parametrize("nrows", [0, 1, BATCH - 1, BATCH, BATCH + 1,
                                   3 * BATCH + 2])
def test_csv_boundary_counts_agree(tmp_path, nrows):
    db, rows = _csv_db(tmp_path, nrows)
    queries = [
        ("for { t <- T } yield count 1", len(rows)),
        ("for { t <- T, t.age > 40 } yield count 1",
         sum(1 for r in rows if r[1] > 40)),
        ("for { t <- T } yield sum t.id", sum(r[0] for r in rows) if rows else 0),
    ]
    for q, expected in queries:
        jit = db.query(q).value
        static = db.query(q, engine="static").value
        assert jit == static == expected, q


@pytest.mark.parametrize("nrows", [1, BATCH, BATCH + 1])
def test_csv_boundary_bag_and_warm_path_agree(tmp_path, nrows):
    db, rows = _csv_db(tmp_path, nrows)
    q = "for { t <- T } yield bag (id := t.id, s := t.score)"
    cold = db.query(q, engine="static").value  # cold: builds the posmap
    db.cache.clear()
    warm = db.query(q).value                   # warm: map-navigated chunks
    db.cache.clear()
    warm_static = db.query(q, engine="static").value
    expected = [{"id": r[0], "s": r[2]} for r in rows]
    assert cold == warm == warm_static == expected


def test_json_and_multiformat_chunk_boundaries(tmp_path):
    path = tmp_path / "events.json"
    n = 2 * BATCH + 3
    with open(path, "w") as fh:
        for i in range(n):
            fh.write(json.dumps({"id": i, "kind": ["a", "b"][i % 2],
                                 "nested": {"v": i * 2}}) + "\n")
    db = ViDa(batch_size=BATCH)
    db.register_json("E", str(path))
    q = 'for { e <- E, e.kind = "a" } yield sum e.nested.v'
    expected = sum(i * 2 for i in range(n) if i % 2 == 0)
    assert db.query(q).value == expected
    assert db.query(q, engine="static").value == expected
    # whole-object binding through chunks
    q2 = "for { e <- E } yield bag e.id"
    assert sorted(db.query(q2).value) == list(range(n))


def test_array_and_xls_chunked_scans_agree(tmp_path):
    from repro.formats import write_array, write_workbook

    apath = tmp_path / "g.varr"
    write_array(apath, (5, 3), [("v", "float")],
                [(float(i * 3 + j),) for i in range(5) for j in range(3)])
    xpath = tmp_path / "b.vxls"
    write_workbook(xpath, [("s", ["id", "amt"],
                            [(i, i * 1.5) for i in range(BATCH + 2)])])
    db = ViDa(batch_size=BATCH)
    db.register_array("G", str(apath), ["i", "j"])
    db.register_xls("B", str(xpath), "s")
    for q in ("for { g <- G, g.i > 1 } yield sum g.v",
              "for { b <- B } yield sum b.amt",
              "for { b <- B, b.id >= 4 } yield count 1"):
        assert db.query(q).value == db.query(q, engine="static").value, q


# -- cache admission: row path vs batch path ---------------------------------


def test_put_columns_equivalent_to_put(tmp_path):
    row_cache = DataCache()
    col_cache = DataCache()
    fields = ("a", "b")
    cols = ([1, 2, 3], ["x", "y", None])
    row_cache.put("S", "columns", fields, list(zip(*cols)))
    col_cache.put_columns("S", fields, cols)
    re = row_cache.lookup("S", ["a", "b"])
    ce = col_cache.lookup("S", ["a", "b"])
    assert re is not None and ce is not None
    assert list(re.cached.iter_rows(fields)) == list(ce.cached.iter_rows(fields))
    assert re.cached.count == ce.cached.count == 3
    assert ce.cached.fields == fields


def test_put_columns_merges_with_existing_entries():
    cache = DataCache()
    cache.put_columns("S", ("a",), ([1, 2],))
    cache.put_columns("S", ("b",), ([10, 20],))
    entry = cache.lookup("S", ["a", "b"])
    assert entry is not None, "aligned columnar entries must merge"
    assert list(entry.cached.iter_rows(("a", "b"))) == [(1, 10), (2, 20)]


def test_put_columns_rejects_ragged():
    from repro.errors import ViDaError

    with pytest.raises(ViDaError):
        DataCache().put_columns("S", ("a", "b"), ([1], [1, 2]))


def test_chunked_scan_populates_cache_like_row_path(tmp_path):
    db, rows = _csv_db(tmp_path, 3 * BATCH + 1)
    q = "for { t <- T, t.age > 30 } yield avg t.score"
    first = db.query(q)
    assert not first.stats.cache_only
    entry = db.cache.lookup("T", ["age", "score"])
    assert entry is not None
    assert entry.cached.count == len(rows)  # populate sees *all* rows
    assert entry.cached.data["age"] == [r[1] for r in rows]
    second = db.query(q)
    assert second.stats.cache_only
    assert second.value == pytest.approx(first.value)
    # the static engine admits the same columns through its chunk protocol
    db2, _ = _csv_db(tmp_path, 3 * BATCH + 1, batch_size=BATCH + 1)
    db2.query(q, engine="static")
    e2 = db2.cache.lookup("T", ["age", "score"])
    assert e2 is not None
    assert e2.cached.data["age"] == entry.cached.data["age"]


def test_cache_hit_served_as_zero_copy_chunk(tmp_path):
    db, rows = _csv_db(tmp_path, BATCH * 2)
    db.query("for { t <- T } yield sum t.age")
    from repro.core.executor.runtime import QueryRuntime

    rt = QueryRuntime(db.catalog, db.cache)
    (chunk,) = rt.cache_chunks("T", ("age",), whole=False)
    entry = db.cache.lookup("T", ["age"])
    assert chunk.columns[0] is entry.cached.data["age"]  # zero copy


# -- planner decision + EXPLAIN ----------------------------------------------


def test_explain_reports_batch_size(db):
    text = db.explain("for { p <- Patients, p.age > 40 } yield count 1")
    assert "batch=" in text
    assert "batch[" in text  # decisions summary


def test_session_batch_size_override(tmp_path):
    db, _rows = _csv_db(tmp_path, 4, batch_size=2)
    r = db.query("for { t <- T } yield count 1")
    assert r.value == 4
    assert r.decisions.batch == {"t": 2}
    assert "batch=2" in r.plan_text


def test_generated_code_uses_chunk_calls(db):
    r = db.query("for { p <- Patients, p.age > 40 } yield avg p.protein")
    assert "_rt.csv_chunks(" in r.code
    warm = db.query("for { p <- Patients, p.age > 40 } yield avg p.protein")
    assert "_rt.cache_chunks(" in warm.code
    assert warm.stats.cache_only


def test_default_batch_size_is_sane():
    assert 0 < DEFAULT_BATCH_SIZE <= MAX_BATCH_SIZE


# -- satellite: JIT compile-cache LRU ---------------------------------------


def _plan_for(db, text):
    from repro.core.optimizer.planner import Planner
    from repro.mcc import normalize, parse, translate

    algebra = translate(normalize(parse(text)), db.catalog.names())
    plan, _ = Planner(db.catalog, db.cache).plan(algebra)
    return plan


def test_jit_cache_true_lru(db):
    ex = JITExecutor(db.catalog, max_cached=2)
    pa = _plan_for(db, "for { p <- Patients } yield count 1")
    pb = _plan_for(db, "for { g <- Genetics } yield count 1")
    pc = _plan_for(db, "for { p <- Patients } yield sum p.age")
    ex.compile(pa)
    ex.compile(pb)
    ex.compile(pa)  # hit: must move A to most-recently-used
    ex.compile(pc)  # evicts B (the LRU), not A
    assert ex.stats.evictions == 1
    hits = ex.stats.cache_hits
    ex.compile(pa)
    assert ex.stats.cache_hits == hits + 1, "hot key must survive eviction"
    ex.compile(pb)  # recompiles: B was evicted
    assert ex.stats.compilations == 4


# -- satellite: SQL LIMIT applied before output shaping ----------------------


def test_sql_limit_applies_to_all_output_shapes(db):
    base = "SELECT id, age FROM Patients LIMIT 3"
    rows = db.sql(base).value
    assert len(rows) == 3
    cols = db.sql(base, output="columns").value
    assert len(cols["id"]) == 3 and len(cols["age"]) == 3
    jl = db.sql(base, output="json").value
    assert len(jl.splitlines()) == 3
    bs = db.sql(base, output="bson").value
    assert len(bs) == 3
    tuples = db.sql(base, output="tuples").value
    assert len(tuples) == 3


# -- satellite: one canonical NULL_TOKENS definition -------------------------


def test_null_tokens_single_definition():
    from repro.core.executor import runtime
    from repro.formats import descriptions
    from repro.formats.csvfmt import plugin as csvplugin

    assert runtime.NULL_TOKENS is descriptions.NULL_TOKENS
    assert csvplugin._NULL_TOKENS is descriptions.NULL_TOKENS
    from repro.formats.csvfmt import CSVOptions

    assert CSVOptions().null_tokens is descriptions.NULL_TOKENS
