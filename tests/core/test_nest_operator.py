"""PhysNest (hash-based grouping) through both executors.

NestOp/PhysNest is the algebra's grouping form; it is exercised here with
directly-constructed plans (the SQL layer currently encodes GROUP BY as
correlated comprehensions — see languages/sql/translate.py).
"""

import pytest

from repro.caching import DataCache
from repro.core.catalog import Catalog
from repro.core.codegen.compiler import QueryCompiler
from repro.core.executor.runtime import QueryRuntime
from repro.core.executor.static_engine import StaticExecutor
from repro.core.physical import PhysNest, PhysReduce, PhysScan, explain_physical
from repro.mcc import ast as A
from repro.mcc.monoids import get_monoid


@pytest.fixture()
def catalog(patients_csv):
    cat = Catalog()
    cat.register_csv("Patients", patients_csv)
    return cat


def group_plan():
    """SELECT gender, AVG(age) FROM Patients GROUP BY gender — as a plan."""
    scan = PhysScan(
        source="Patients", var="p", format="csv",
        fields=("age", "gender"), access="cold",
    )
    nest = PhysNest(
        child=scan,
        keys=(("gender", A.Proj(A.Var("p"), "gender")),),
        monoid=get_monoid("avg"),
        head=A.Proj(A.Var("p"), "age"),
        group_var="g",
        agg_name="avg_age",
    )
    head = A.RecordCons((
        ("gender", A.Proj(A.Var("g"), "gender")),
        ("avg_age", A.Proj(A.Var("g"), "avg_age")),
    ))
    return PhysReduce(nest, get_monoid("bag"), head)


def reference(catalog):
    rows = list(catalog.get("Patients").plugin.scan(["age", "gender"]))
    groups: dict = {}
    for age, gender in rows:
        groups.setdefault(gender, []).append(age)
    return {g: sum(v) / len(v) for g, v in groups.items()}


def test_nest_jit(catalog):
    plan = group_plan()
    compiled = QueryCompiler(catalog).compile(plan)
    rt = QueryRuntime(catalog, DataCache())
    out = compiled(rt)
    expected = reference(catalog)
    assert {r["gender"]: r["avg_age"] for r in out} == pytest.approx(expected)


def test_nest_static(catalog):
    plan = group_plan()
    rt = QueryRuntime(catalog, DataCache())
    out = StaticExecutor(catalog).execute(plan, rt)
    expected = reference(catalog)
    assert {r["gender"]: r["avg_age"] for r in out} == pytest.approx(expected)


def test_nest_multi_key_count(catalog):
    scan = PhysScan(source="Patients", var="p", format="csv",
                    fields=("gender", "city"), access="cold")
    nest = PhysNest(
        child=scan,
        keys=(("gender", A.Proj(A.Var("p"), "gender")),
              ("city", A.Proj(A.Var("p"), "city"))),
        monoid=get_monoid("count"),
        head=A.Const(1),
        group_var="g",
        agg_name="n",
    )
    plan = PhysReduce(nest, get_monoid("sum"), A.Proj(A.Var("g"), "n"))
    rt = QueryRuntime(catalog, DataCache())
    total = QueryCompiler(catalog).compile(plan)(rt)
    assert total == 60  # group counts sum back to the row count


def test_nest_explain(catalog):
    text = explain_physical(group_plan())
    assert "Nest[" in text and "avg" in text
