"""Optimizer tests: access paths, join ordering, populate decisions."""

import pytest

from repro.caching import DataCache
from repro.core.catalog import Catalog
from repro.core.optimizer.cost import (
    access_factor,
    predicate_selectivity,
    source_row_estimate,
)
from repro.core.optimizer.planner import Planner
from repro.core.physical import (
    PhysFilter,
    PhysHashJoin,
    PhysNLJoin,
    PhysReduce,
    PhysScan,
    PhysUnnest,
    collect_usage,
    plan_scans,
)
from repro.mcc import normalize, parse, translate
from repro.mcc import ast as A


@pytest.fixture()
def catalog(patients_csv, genetics_csv, brain_json):
    cat = Catalog()
    cat.register_csv("Patients", patients_csv)
    cat.register_csv("Genetics", genetics_csv)
    cat.register_json("BrainRegions", brain_json)
    return cat


def plan_for(catalog, cache, text):
    algebra = translate(normalize(parse(text)), catalog.names())
    return Planner(catalog, cache).plan(algebra)


def test_scan_fields_are_pushed_down(catalog):
    plan, _d = plan_for(catalog, DataCache(),
                        "for { p <- Patients, p.age > 50 } yield sum p.protein")
    (scan,) = plan_scans(plan)
    assert set(scan.fields) == {"age", "protein"}
    assert scan.access == "cold"
    assert scan.pred is not None  # single-source predicate pushed into scan


def test_equi_join_becomes_hash_join(catalog):
    plan, decisions = plan_for(
        catalog, DataCache(),
        "for { p <- Patients, g <- Genetics, p.id = g.id } yield count 1",
    )
    assert isinstance(plan, PhysReduce)
    assert isinstance(plan.child, PhysHashJoin)
    assert len(decisions.join_order) == 2


def test_no_equi_pred_gives_nl_join(catalog):
    plan, decisions = plan_for(
        catalog, DataCache(),
        "for { p <- Patients, g <- Genetics, p.age > g.snp_a } yield count 1",
    )
    node = plan.child
    while isinstance(node, PhysFilter):
        node = node.child
    assert isinstance(node, PhysNLJoin)
    assert any("cross join" in n for n in decisions.notes)


def test_unnest_planned_after_parent(catalog):
    plan, decisions = plan_for(
        catalog, DataCache(),
        "for { b <- BrainRegions, r <- b.regions, r.volume > 11 } yield count 1",
    )
    node = plan.child
    assert isinstance(node, PhysUnnest)
    assert node.pred is not None
    assert decisions.join_order.index("b") < decisions.join_order.index("r")


def test_cache_access_chosen_when_covered(catalog):
    cache = DataCache()
    cache.put("Patients", "columns", ("age", "id"),
              [(30 + i, i) for i in range(60)])
    plan, decisions = plan_for(catalog, cache,
                               "for { p <- Patients, p.age > 40 } yield count 1")
    (scan,) = plan_scans(plan)
    assert scan.access == "cache"
    assert decisions.cache_served


def test_warm_access_after_posmap_built(catalog):
    list(catalog.get("Patients").plugin.scan(["id"]))  # builds the map
    plan, _d = plan_for(catalog, DataCache(),
                        "for { p <- Patients } yield sum p.age")
    (scan,) = plan_scans(plan)
    assert scan.access == "warm"


def test_populate_decision_on_cold_scan(catalog):
    plan, decisions = plan_for(catalog, DataCache(),
                               "for { p <- Patients } yield avg p.protein")
    (scan,) = plan_scans(plan)
    assert "protein" in scan.populate
    assert decisions.populate


def test_populate_disabled_without_cache(catalog):
    algebra = translate(
        normalize(parse("for { p <- Patients } yield avg p.protein")),
        catalog.names(),
    )
    plan, _d = Planner(catalog, DataCache(), enable_cache=False).plan(algebra)
    (scan,) = plan_scans(plan)
    assert scan.populate == ()


def test_whole_json_population_layout(catalog):
    plan, _d = plan_for(catalog, DataCache(),
                        "for { b <- BrainRegions } yield bag b")
    (scan,) = plan_scans(plan)
    assert scan.bind_whole
    assert scan.populate in ((), ("*",))
    if scan.populate:
        assert scan.populate_layout in ("objects", "bson")


def test_join_order_smaller_build(catalog):
    # Genetics filtered to ~1/10 of rows should be chosen as build side
    plan, _d = plan_for(
        catalog, DataCache(),
        "for { p <- Patients, g <- Genetics, p.id = g.id, g.snp_a = 0 } "
        "yield count 1",
    )
    join = plan.child
    while isinstance(join, PhysFilter):
        join = join.child
    assert isinstance(join, PhysHashJoin)
    assert isinstance(join.build, (PhysScan, PhysFilter))
    build_scan = join.build
    while isinstance(build_scan, PhysFilter):
        build_scan = build_scan.child
    assert build_scan.source == "Genetics"


# -- cost model ----------------------------------------------------------------


def test_access_factor_ordering():
    assert access_factor("csv", "cold") > access_factor("csv", "warm")
    assert access_factor("json", "cold") > access_factor("csv", "cold")
    assert access_factor("cache", "cache") < access_factor("csv", "warm")


def test_predicate_selectivity():
    eq = parse("x.a = 1")
    rng = parse("x.a > 1")
    conj = parse("x.a = 1 and x.b > 2")
    assert predicate_selectivity(eq) < predicate_selectivity(rng)
    assert predicate_selectivity(conj) == pytest.approx(
        predicate_selectivity(eq) * predicate_selectivity(rng)
    )
    assert predicate_selectivity(A.Const(True)) == 1.0
    assert predicate_selectivity(A.Const(False)) == 0.0


def test_source_row_estimate_exact_after_aux(catalog):
    entry = catalog.get("Patients")
    list(entry.plugin.scan(["id"]))
    assert source_row_estimate(entry) == 60


# -- usage analysis ---------------------------------------------------------


def test_collect_usage_paths_and_whole():
    e = parse("for { x <- S } yield bag (a := x.info.vol, whole := x)").head
    usage = collect_usage(e)
    assert usage["x"].whole
    assert ("info", "vol") in usage["x"].paths


def test_collect_usage_respects_shadowing():
    e = parse("for { x <- S } yield sum (for { y <- T } yield sum y.v)")
    usage = collect_usage(e)
    assert "y" not in usage  # bound inside the nested comprehension
