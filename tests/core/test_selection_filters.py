"""Selection-vector filters end-to-end + vectorized hash-join kernels.

Contracts under test:

- uncompacted chunks (pending ``Chunk.selection``) can never leak dropped
  rows — ``iter_rows``/``iter_whole``/``selected_columns`` honour the
  vector, ``take`` refuses positional access while one is pending;
- ``Chunk.from_rows`` rejects ragged input instead of silently truncating;
- both engines evaluate pushed-down predicates as selection kernels
  (``filter=vec`` in EXPLAIN; warm CSV gets ``filter=vec+push`` late
  materialization) with answers identical to row-at-a-time evaluation
  (``ViDa(vector_filters=False)``) at every DoP;
- vectorized hash-join build/probe returns exactly the row path's answers;
- a satisfied SQL LIMIT under ``ViDa(parallelism=N)`` cancels pending
  morsels (observable via ``stats.morsels_cancelled``) without changing
  the returned rows, and suppresses partial cache admissions.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import ViDa
from repro.cleaning import SkipPolicy
from repro.core.chunk import Chunk, Morsel
from repro.core.executor.scheduler import MorselScheduler

ENGINES = ("jit", "static")


# ---------------------------------------------------------------------------
# Chunk protocol bug fixes
# ---------------------------------------------------------------------------


def _selected_chunk():
    ch = Chunk.from_columns(("a", "b"), [[1, 2, 3, 4], list("wxyz")],
                            whole=[{"i": i} for i in range(4)])
    ch.selection = [1, 3]
    return ch


def test_iter_rows_honours_pending_selection():
    ch = _selected_chunk()
    assert ch.rows() == [(2, "x"), (4, "z")]
    assert list(ch.iter_whole()) == [{"i": 1}, {"i": 3}]
    assert ch.selected_columns() == ([2, 4], ["x", "z"])
    assert ch.selected_length == 2
    assert ch.length == 4  # physical length unchanged


def test_iter_rows_single_column_and_empty_selection():
    ch = Chunk.from_columns(("a",), [[10, 20, 30]])
    ch.selection = [2]
    assert ch.rows() == [(30,)]
    ch.selection = []
    assert ch.rows() == []
    assert ch.selected_length == 0
    # column-less chunks count selected rows too
    bare = Chunk((), (), 5)
    bare.selection = [0, 4]
    assert bare.rows() == [(), ()]


def test_take_refuses_uncompacted_chunks():
    ch = _selected_chunk()
    with pytest.raises(ValueError, match="uncompacted"):
        ch.take([0])
    dense = ch.compact()
    assert dense.selection is None
    assert dense.take([1]).rows() == [(4, "z")]


def test_from_rows_rejects_ragged_rows():
    with pytest.raises(ValueError, match="ragged"):
        Chunk.from_rows(("a", "b"), [(1, 2), (3,)])
    with pytest.raises(ValueError, match="ragged"):
        Chunk.from_rows(("a", "b"), [(1, 2), (3, 4, 5)])
    # aligned rows still round-trip
    assert Chunk.from_rows(("a", "b"), [(1, 2), (3, 4)]).rows() == \
        [(1, 2), (3, 4)]


# ---------------------------------------------------------------------------
# fixtures: selective CSVs, one dirty (cleaning drops rows mid-file)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sel_dir(tmp_path_factory):
    rng = random.Random(99)
    d = tmp_path_factory.mktemp("selfilters")
    with open(d / "t.csv", "w") as fh:
        fh.write("id,age,score\n")
        for i in range(8000):
            fh.write(f"{i},{20 + (i * 7) % 80},{round(rng.random(), 4)}\n")
    with open(d / "u.csv", "w") as fh:
        fh.write("id,val\n")
        for i in range(0, 8000, 3):
            fh.write(f"{i},{rng.randint(0, 100)}\n")
    # dirty rows appear only after the schema-inference sample window
    with open(d / "dirty.csv", "w") as fh:
        fh.write("id,age\n")
        for i in range(6000):
            age = "bad" if 200 <= i < 230 or i % 997 == 0 else 20 + i % 60
            fh.write(f"{i},{age}\n")
    return d


def _session(d, *, vec=True, dop=1, cache=False, clean=False):
    # filter-kernel behaviour on full scans is the subject throughout this
    # file; value indexes would bypass the scans under test on warm repeats
    db = ViDa(vector_filters=vec, parallelism=dop, enable_cache=cache,
              enable_indexes=False)
    db.register_csv("T", str(d / "t.csv"))
    db.register_csv("U", str(d / "u.csv"))
    db.register_csv("Dirty", str(d / "dirty.csv"),
                    columns=["id", "age"], types=["int", "int"])
    if clean:
        db.set_cleaning("Dirty", SkipPolicy())
    return db


QUERIES = [
    # selective filter, bag output (row-loop consumer in vec-off mode)
    'for { t <- T, t.age > 92 } yield bag (id := t.id, s := t.score)',
    # selective filter + set monoid (never a fused fold — row consumer)
    'for { t <- T, t.age > 92 } yield set t.age',
    # filter + vectorized hash join, fused sum over survivors
    'for { t <- T, u <- U, t.id = u.id, t.age > 92 } yield sum u.val',
    # join with no scan filter: pure build/probe vectorization
    'for { t <- T, u <- U, t.id = u.id } yield count 1',
    # empty selection on every chunk: predicate matches nothing
    'for { t <- T, t.age > 1000 } yield bag t.id',
]


@pytest.mark.parametrize("engine", ENGINES)
def test_vectorized_filters_and_joins_match_row_mode(sel_dir, engine):
    """vec on/off × cold/warm × both engines: identical answers."""
    row = _session(sel_dir, vec=False)
    vec = _session(sel_dir, vec=True)
    for q in QUERIES:
        for db in (row, vec):  # first run cold, second run warm (posmap)
            db.query(q, engine=engine)
        assert vec.query(q, engine=engine).value == \
            row.query(q, engine=engine).value, q


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("dop", (2, 4))
def test_selection_filters_parallel_differential(sel_dir, engine, dop):
    serial = _session(sel_dir, vec=True)
    par = _session(sel_dir, vec=True, dop=dop)
    for q in QUERIES:
        if "sum u.val" in q:  # int sums: still exact
            pass
        s = serial.query(q, engine=engine).value
        p = par.query(q, engine=engine).value
        assert p == s, q


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("dop", (1, 2, 4))
def test_cleaning_selection_chunks_never_leak_dropped_rows(sel_dir, engine, dop):
    """Selection-carrying chunks (cleaning drops) through both engines."""
    db = _session(sel_dir, dop=dop, clean=True)
    dropped = [i for i in range(6000) if 200 <= i < 230 or i % 997 == 0]
    expected = 6000 - len(dropped)
    # any scan extracting the dirty column sees only the survivors
    n = db.query('for { d <- Dirty, d.age >= 0 } yield count 1',
                 engine=engine).value
    assert n == expected
    ids = db.query('for { d <- Dirty, d.age >= 0 } yield bag d.id',
                   engine=engine).value
    assert len(ids) == expected
    assert 205 not in ids and 0 not in ids  # i=0: 0 % 997 == 0 → dropped
    # join through a cleaning-selection source: dropped build rows never
    # reach the hash table / probe kernels
    q = ('for { d <- Dirty, u <- U, d.id = u.id, d.age >= 0 } '
         'yield count 1')
    j = db.query(q, engine=engine).value
    ref = _session(sel_dir, vec=False, clean=True)
    assert j == ref.query(q, engine=engine).value
    assert j == len([i for i in range(0, 6000, 3) if i not in set(dropped)])


def test_cleaning_source_is_never_selection_pushed(sel_dir):
    """The predicate must see repaired values → filters stay in-engine."""
    db = _session(sel_dir, clean=True)
    db.query('for { d <- Dirty } yield count 1')  # build posmap
    text = db.explain('for { d <- Dirty, d.age > 30 } yield count 1')
    assert "filter=vec" in text
    assert "filter=vec+push" not in text


def test_explain_shows_filter_kinds(sel_dir):
    db = _session(sel_dir)
    cold = db.explain('for { t <- T, t.age > 92 } yield count 1')
    assert "filter=vec" in cold
    db.query('for { t <- T } yield count 1')  # complete the posmap
    warm = db.explain('for { t <- T, t.age > 92 } yield count 1')
    assert "filter=vec+push" in warm
    # decisions record the choice too
    r = db.query('for { t <- T, t.age > 92 } yield count 1')
    assert r.decisions.filters == {"t": "vec+push"}
    # memory scans stay row-at-a-time
    db.register_memory("M", [{"x": 1}, {"x": 5}])
    assert "filter=row" in db.explain('for { m <- M, m.x > 2 } yield count 1')
    # a vector_filters=False session compiles row tests — EXPLAIN says so
    rowdb = _session(sel_dir, vec=False)
    text = rowdb.explain('for { t <- T, t.age > 92 } yield count 1')
    assert "filter=row" in text and "filter=vec" not in text


def test_selection_pushdown_preserves_stats_and_values(sel_dir):
    """Late materialization: same answers, same raw-row accounting."""
    q = 'for { t <- T, t.age > 92 } yield bag (id := t.id, s := t.score)'
    vec = _session(sel_dir, vec=True)
    row = _session(sel_dir, vec=False)
    for db in (vec, row):
        db.query(q)  # cold pass builds the positional map
    rv, rr = vec.query(q), row.query(q)
    assert rv.value == rr.value
    assert rv.stats.raw_rows == rr.stats.raw_rows  # dropped rows still scanned
    assert "pred_kernel" in rv.code
    assert "pred_kernel" not in rr.code


def test_empty_selection_short_circuits_generated_code(sel_dir):
    db = _session(sel_dir)
    r = db.query('for { t <- T, u <- U, t.id = u.id, t.age > 1000 } '
                 'yield bag u.val')
    assert r.value == []
    # the probe kernel short-circuits on an empty matched-selection vector
    assert "if not " in r.code and "continue" in r.code


def test_vectorized_join_codegen_shape(sel_dir):
    db = _session(sel_dir)
    r = db.query('for { t <- T, u <- U, t.id = u.id, t.age > 92 } '
                 'yield sum u.val')
    code = r.code
    # build side: fused key+row kernel feeding the bulk insert loop
    assert "].get\n" in code or ".get" in code
    # probe side: matched-selection vector over batched key lookups
    assert "[_i for _i, _k in enumerate(" in code
    # root fold fused over the surviving rows
    assert "_acc += sum(" in code


# ---------------------------------------------------------------------------
# parallel LIMIT early termination
# ---------------------------------------------------------------------------


def test_parallel_limit_rows_identical_and_morsels_cancelled(sel_dir):
    serial = _session(sel_dir)
    s = serial.sql("SELECT id FROM T WHERE age > 25 LIMIT 40")
    par = _session(sel_dir, dop=4)
    p = par.sql("SELECT id FROM T WHERE age > 25 LIMIT 40")
    assert p.value == s.value
    assert len(p.value) == 40
    # early-stop observability: pending morsels were cancelled, and the
    # scan stopped before reading the whole file
    assert p.stats.morsels_cancelled > 0
    assert p.stats.raw_rows < s.stats.raw_rows
    # unsatisfied limits still return everything and cancel nothing
    p2 = par.sql("SELECT id FROM T WHERE age > 1000 LIMIT 5")
    s2 = serial.sql("SELECT id FROM T WHERE age > 1000 LIMIT 5")
    assert p2.value == s2.value == []


@pytest.mark.parametrize("engine", ENGINES)
def test_parallel_limit_both_engines(sel_dir, engine):
    serial = _session(sel_dir)
    par = _session(sel_dir, dop=2)
    for q, lim in (("SELECT id, score FROM T LIMIT 17", 17),
                   ("SELECT id FROM T WHERE age > 40 LIMIT 100", 100)):
        s = serial.sql(q, engine=engine)
        p = par.sql(q, engine=engine)
        assert p.value == s.value
        assert len(p.value) == lim


def test_truncated_scan_never_admits_partial_columns(sel_dir):
    """A LIMIT-cut scan saw a prefix — its columns must not enter the cache
    as if complete."""
    db = _session(sel_dir, dop=4, cache=True)
    p = db.sql("SELECT id FROM T LIMIT 10")
    assert len(p.value) == 10
    if p.stats.morsels_cancelled:
        # the next query must not believe the cache covers T.id
        r = db.query("for { t <- T } yield count 1")
        assert r.stats.raw_rows > 0
        assert not r.stats.cache_only


def test_scheduler_stop_predicate_returns_ordered_prefix():
    morsels = [Morsel("rows", i, i + 1) for i in range(10)]
    sched = MorselScheduler(2)
    seen = []

    def stop(partial):
        seen.append(partial)
        return len(seen) >= 3

    out = sched.map(lambda m: m.lo, morsels, stop=stop)
    assert out == [0, 1, 2]
    # inline path (dop=1) stops too and counts the remainder
    sched1 = MorselScheduler(1)
    out1 = sched1.map(lambda m: m.lo, morsels,
                      stop=lambda p: p >= 4)
    assert out1 == [0, 1, 2, 3, 4]
    assert sched1.cancelled == 5


def test_limit_oversplit_only_when_countable(sel_dir):
    """Scalar folds ignore LIMIT → no oversplit, no early stop."""
    par = _session(sel_dir, dop=2)
    serial = _session(sel_dir)
    s = serial.sql("SELECT SUM(score) FROM T WHERE age > 40")
    p = par.sql("SELECT SUM(score) FROM T WHERE age > 40")
    assert math.isclose(p.value, s.value, rel_tol=1e-9)
    assert p.stats.morsels_cancelled == 0
    assert p.stats.raw_rows == s.stats.raw_rows


# ---------------------------------------------------------------------------
# warehouse adapter rides the same contract
# ---------------------------------------------------------------------------


def test_colstore_adapter_streams_uncompacted_chunks():
    from repro.warehouse.colstore import ColStore
    from repro.warehouse.query import ColStoreAdapter, Filter

    store = ColStore()
    store.create_table("P", ["id", "age"], ["int", "int"])
    store.insert_rows("P", [(i, 20 + i % 10) for i in range(30)])
    adapter = ColStoreAdapter(store, "P")
    out = list(adapter.fetch_filtered(["id"], [Filter("age", ">=", 28)]))
    assert out == [{"id": i} for i in range(30) if 20 + i % 10 >= 28]
