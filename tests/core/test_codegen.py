"""Code-generation unit tests: expression compiler + compile cache."""

import pytest

from repro.core.codegen.exprs import (
    ExprContext,
    ObjectBinding,
    ScalarBinding,
    compile_expr,
)
from repro.core.codegen.helpers import HELPERS, get_path, like
from repro.core.executor.engine import JITExecutor
from repro.errors import CodegenError
from repro.mcc.parser import parse


def ctx_with(bindings):
    return ExprContext(bindings=bindings, source_names=frozenset({"S"}))


def evaluate(code: str, env: dict):
    return eval(code, dict(HELPERS), env)  # noqa: S307 - test helper


def test_scalar_binding_direct_local():
    ctx = ctx_with({"p": ScalarBinding({"age": "p_age"})})
    code = compile_expr(parse("p.age + 1"), ctx)
    assert evaluate(code, {"p_age": 41}) == 42


def test_scalar_binding_prefix_navigation():
    ctx = ctx_with({"p": ScalarBinding({"info": "p_info"})})
    code = compile_expr(parse("p.info.vol"), ctx)
    assert evaluate(code, {"p_info": {"vol": 7}}) == 7


def test_scalar_binding_missing_path_raises():
    ctx = ctx_with({"p": ScalarBinding({"age": "p_age"})})
    with pytest.raises(CodegenError):
        compile_expr(parse("p.name"), ctx)


def test_object_binding_navigation():
    ctx = ctx_with({"b": ObjectBinding("b_obj")})
    code = compile_expr(parse("b.meta.version"), ctx)
    assert evaluate(code, {"b_obj": {"meta": {"version": 3}}}) == 3
    assert evaluate(code, {"b_obj": {}}) is None  # null-safe navigation


def test_whole_var_from_scalar_binding_rebuilds_record():
    binding = ScalarBinding({"a": "x_a", "b": "x_b"})
    ctx = ctx_with({"x": binding})
    code = compile_expr(parse("x"), ctx)
    assert evaluate(code, {"x_a": 1, "x_b": 2}) == {"a": 1, "b": 2}


def test_guarded_comparisons_are_null_safe():
    ctx = ctx_with({"p": ScalarBinding({"v": "p_v"})})
    code = compile_expr(parse("p.v < 10"), ctx)
    assert evaluate(code, {"p_v": 5}) is True
    assert evaluate(code, {"p_v": None}) is False


def test_equality_compiles_plain():
    ctx = ctx_with({"p": ScalarBinding({"v": "p_v"})})
    code = compile_expr(parse("p.v = 3"), ctx)
    assert "==" in code


def test_if_and_record_and_list():
    ctx = ctx_with({"p": ScalarBinding({"v": "p_v"})})
    code = compile_expr(parse("(a := if p.v > 0 then 1 else 2, xs := [p.v, 9])"), ctx)
    assert evaluate(code, {"p_v": 5}) == {"a": 1, "xs": [5, 9]}


def test_like_and_builtins():
    ctx = ctx_with({"p": ScalarBinding({"name": "p_name"})})
    code = compile_expr(parse('p.name like "A%" and startswith(p.name, "A")'), ctx)
    assert evaluate(code, {"p_name": "Anna"}) is True
    assert evaluate(code, {"p_name": None}) is False


def test_unbound_variable_raises():
    ctx = ctx_with({})
    with pytest.raises(CodegenError):
        compile_expr(parse("ghost.field"), ctx)


def test_helpers_null_semantics():
    assert get_path({"a": [{"b": 2}]}, ("a", "0", "b")) == 2
    assert get_path(None, ("a",)) is None
    assert like("hello", "h_llo")
    assert not like(None, "%")
    assert HELPERS["_lower"](None) is None
    assert HELPERS["_substr"]("hello", 1, 3) == "ell"


# -- compile cache -----------------------------------------------------------


def test_jit_compile_cache(db):
    executor = db._jit
    before = executor.stats.compilations
    q = "for { p <- Patients, p.age > 33 } yield count 1"
    db.query(q)
    db.query(q)  # same text, same plan shape after cache warm? plans differ
    assert executor.stats.compilations > before
    # identical plan fingerprints hit the compile cache
    from repro.core.executor.engine import plan_fingerprint
    from repro.mcc import normalize, parse as mcc_parse, translate
    from repro.core.optimizer.planner import Planner

    algebra = translate(normalize(mcc_parse(q)), db.catalog.names())
    plan1, _ = Planner(db.catalog, db.cache).plan(algebra)
    plan2, _ = Planner(db.catalog, db.cache).plan(algebra)
    assert plan_fingerprint(plan1) == plan_fingerprint(plan2)
    executor.compile(plan1)
    hits_before = executor.stats.cache_hits
    executor.compile(plan2)
    assert executor.stats.cache_hits == hits_before + 1


def test_generated_source_is_specialised(db):
    """Generated code contains the inlined constant, not a generic reader."""
    r = db.query('for { p <- Patients, p.city = "geneva" } yield count 1')
    assert "'geneva'" in r.code
    # the root count fuses into a per-chunk kernel
    assert "_acc += sum(1 for" in r.code
