"""JIT secondary indexes: value-based access paths built as scan byproducts.

Covers the full lifecycle the subsystem promises:

- emission: cold/warm chunked scans over a predicate column leave a value
  index behind (hash entries + sorted runs over *touched* row ranges);
- access-path selection: the planner upgrades repeated point/range/IN
  filters to ``access=index`` (EXPLAIN + decisions proof), with a cheap
  predicate recheck so partial-coverage indexes stay exact;
- differentials: index-served answers bit-identical to full-scan baselines
  (``enable_indexes=False``) on both engines, serial and DoP 2/4 on the
  thread and process backends;
- partial coverage: candidate fetches interleave with full scans of
  uncovered holes in row order, and hole scans re-emit so coverage
  converges;
- invalidation: in-place mutation and append drop the index with the
  positional map (per-source generation token);
- morsel merge: byte-split partials carry morsel-local rows and merge
  deterministically in morsel order.
"""

import os
import random
import time

import pytest

from repro.core.session import ViDa
from repro.indexing import IndexPartial, IndexRegistry, ValueIndex

ENGINES = ["jit", "static"]


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture()
def data_dir(tmp_path):
    rng = random.Random(17)
    with open(tmp_path / "patients.csv", "w") as fh:
        fh.write("id,age,city\n")
        for i in range(6000):
            fh.write(f"{i},{rng.randrange(91)},c{i % 13}\n")
    with open(tmp_path / "regions.json", "w") as fh:
        for i in range(3000):
            fh.write('{"id": %d, "volume": %d, "meta": {"lab": "L%d"}}\n'
                     % (i, rng.randrange(400), i % 7))
    return tmp_path


def _session(d, *, indexed=True, dop=1, backend="thread", engine="jit"):
    db = ViDa(enable_cache=False, enable_indexes=indexed, parallelism=dop,
              backend=backend, default_engine=engine)
    db.register_csv("Patients", str(d / "patients.csv"))
    db.register_json("Regions", str(d / "regions.json"))
    return db


POINT_Q = "for { p <- Patients, p.age = 33 } yield bag (id := p.id)"
RANGE_Q = "for { p <- Patients, p.age < 7 } yield bag (id := p.id)"
IN_Q = "for { p <- Patients, p.age in [3, 5, 9] } yield bag (id := p.id)"
FOLD_Q = "for { p <- Patients, p.age = 30 + 3 } yield bag (id := p.id)"
JSON_Q = "for { r <- Regions, r.volume = 123 } yield bag (id := r.id)"
NESTED_Q = 'for { r <- Regions, r.meta.lab = "L2" } yield bag (id := r.id)'


# ---------------------------------------------------------------------------
# unit: ValueIndex structure
# ---------------------------------------------------------------------------


def test_value_index_lookup_kinds():
    idx = ValueIndex("x")
    idx.add_run(0, [5, 2, 5, None, 9, 2])
    assert idx.lookup(("eq", "x", 5)) == [0, 2]
    assert idx.lookup(("eq", "x", 404)) == []
    assert idx.lookup(("in", "x", (2, 9))) == [1, 4, 5]
    assert idx.lookup(("range", "x", 2, 5, True, False)) == [1, 5]
    assert idx.lookup(("range", "x", None, 5, False, True)) == [0, 1, 2, 5]
    # None never matches an ordered comparison (engines null-guard them)
    assert 3 not in idx.lookup(("range", "x", 0, None, True, False))
    # an unservable probe (no typed bound) falls back to a full scan
    assert idx.lookup(("range", "x", None, None, False, False)) is None


def test_value_index_coverage_merging():
    idx = ValueIndex("x")
    assert idx.add_run(0, [1, 2]) == 2
    assert idx.add_run(4, [1, 2]) == 2
    assert idx.covered == [(0, 2), (4, 6)]
    # overlapping re-scan indexes only the uncovered slice
    assert idx.add_run(1, [2, 3, 4]) == 2
    assert idx.covered == [(0, 6)]
    assert idx.add_run(0, [1, 2, 2, 3, 4, 1]) == 0  # fully covered: no-op
    assert idx.coverage(8) == 0.75
    assert idx.uncovered_ranges(8) == [(6, 8)]
    assert idx.lookup(("eq", "x", 2)) == [1, 5]


def test_registry_generation_and_morsel_merge():
    reg = IndexRegistry()
    # byte-morsel partials: local rows, merged in morsel order
    p1 = IndexPartial(("x",), local_rows=True)
    p1.record(0, {"x": [10, 11]})
    p2 = IndexPartial(("x",), local_rows=True)
    p2.record(0, {"x": [12, 10]})
    assert reg.adopt("S", 1, [p1, p2]) == 1
    idx = reg.peek("S", 1, "x")
    assert idx.lookup(("eq", "x", 10)) == [0, 3]
    assert idx.coverage(4) == 1.0
    # a new generation invalidates everything under the old one
    assert reg.peek("S", 2, "x") is None
    assert reg.peek("S", 1, "x") is None


# ---------------------------------------------------------------------------
# end-to-end: build on first scan, serve on repeats, differentials
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "query", [POINT_Q, RANGE_Q, IN_Q, FOLD_Q, JSON_Q, NESTED_Q])
def test_index_served_answers_match_full_scan(data_dir, engine, query):
    base = _session(data_dir, indexed=False, engine=engine)
    db = _session(data_dir, indexed=True, engine=engine)
    expect = base.query(query).value
    r1 = db.query(query)  # cold: builds posmap/semi-index + value index
    assert r1.value == expect
    assert r1.stats.index_builds >= 1
    r2 = db.query(query)  # warm repeat: index access path
    assert r2.value == expect
    assert r2.stats.index_hits == 1, r2.decisions.summary()
    assert r2.stats.index_rows_served == len(expect)
    assert "index" in r2.decisions.access.values()


def test_explain_shows_index_access_path(data_dir):
    db = _session(data_dir)
    db.query(POINT_Q)
    text = db.explain(POINT_Q)
    assert "access=index[age]" in text
    r = db.query(POINT_Q)
    assert any("index lookup on Patients.age" in n for n in r.decisions.notes)
    # IN-list matching goes through the same chooser
    db.query(IN_Q)
    assert "access=index[age]" in db.explain(IN_Q)


@pytest.mark.parametrize("backend,dop", [("thread", 2), ("thread", 4),
                                         ("process", 2), ("process", 4)])
def test_parallel_differentials(data_dir, backend, dop):
    serial = _session(data_dir, indexed=True)
    expect1 = serial.query(POINT_Q).value
    expect2 = serial.query(POINT_Q).value
    assert expect1 == expect2
    db = _session(data_dir, indexed=True, dop=dop, backend=backend)
    try:
        r1 = db.query(POINT_Q)
        r2 = db.query(POINT_Q)
        assert r1.value == expect1
        assert r2.value == expect2
    finally:
        db.close()


def test_thread_sharded_build_matches_serial(data_dir):
    """A DoP-4 cold scan builds the index from byte-split morsel partials;
    the merged index must equal the serially-built one."""
    serial = _session(data_dir, indexed=True)
    serial.query(POINT_Q)
    db = _session(data_dir, indexed=True, dop=4)
    r1 = db.query(POINT_Q)
    assert r1.stats.index_builds >= 1
    gen = db.catalog.get("Patients").generation
    sgen = serial.catalog.get("Patients").generation
    sharded = db.indexes.peek("Patients", gen, "age")
    built = serial.indexes.peek("Patients", sgen, "age")
    assert sharded is not None and built is not None
    assert sharded.entries == built.entries
    assert sharded.covered == built.covered
    r2 = db.query(POINT_Q)
    assert r2.stats.index_hits == 1
    assert r2.value == serial.query(POINT_Q).value


def test_repeat_queries_do_not_rebuild(data_dir):
    db = _session(data_dir)
    db.query(POINT_Q)
    r2 = db.query(POINT_Q)
    r3 = db.query(POINT_Q)
    # covered ranges are never re-indexed: no growth on repeats
    assert r2.stats.index_builds == 0
    assert r3.stats.index_builds == 0


# ---------------------------------------------------------------------------
# partial coverage: recheck + hole scans + convergence
# ---------------------------------------------------------------------------


def test_partial_coverage_recheck_and_convergence(data_dir):
    db = _session(data_dir)
    full = db.query(POINT_Q).value

    entry = db.catalog.get("Patients")
    total = len(entry.plugin.posmap.row_offsets)
    ages = []
    with open(data_dir / "patients.csv") as fh:
        next(fh)
        for line in fh:
            ages.append(int(line.split(",")[1]))

    # replace the organically-built index with a half-coverage one
    db.indexes.invalidate_source("Patients")
    part = IndexPartial(("age",))
    part.record(0, {"age": ages[: total // 2]})
    db.indexes.adopt("Patients", entry.generation, [part])
    assert db.indexes.peek("Patients", entry.generation,
                           "age").coverage(total) == 0.5

    r = db.query(POINT_Q)
    assert r.value == full  # candidates + hole scan, bit-identical
    assert r.stats.index_hits == 1
    assert r.stats.raw_rows > r.stats.index_rows_served  # holes were scanned
    # the hole scan re-emitted: coverage converged to 1.0
    assert db.indexes.peek("Patients", entry.generation,
                           "age").coverage(total) == 1.0
    r2 = db.query(POINT_Q)
    assert r2.value == full
    assert r2.stats.raw_rows == r2.stats.index_rows_served  # no holes left


def test_low_coverage_rejected_with_note(data_dir):
    db = _session(data_dir)
    db.query(POINT_Q)
    entry = db.catalog.get("Patients")
    db.indexes.invalidate_source("Patients")
    tiny = IndexPartial(("age",))
    tiny.record(0, {"age": [33] * 10})
    db.indexes.adopt("Patients", entry.generation, [tiny])
    r = db.query(POINT_Q)
    assert r.stats.index_hits == 0
    assert any("rejected (coverage" in n for n in r.decisions.notes)


# ---------------------------------------------------------------------------
# invalidation
# ---------------------------------------------------------------------------


def _touch(path):
    time.sleep(0.01)
    os.utime(path)


def test_append_extends_index_in_place(data_dir):
    db = _session(data_dir)
    db.query(POINT_Q)
    before = db.query(POINT_Q)
    assert before.stats.index_hits == 1
    with open(data_dir / "patients.csv", "a") as fh:
        fh.write("99999,33,cX\n")
    _touch(data_dir / "patients.csv")
    r = db.query(POINT_Q)
    # delta refresh re-keys the index to the new generation and extends it
    # with the appended tail, so the next query still serves through it —
    # and sees the new row
    assert r.stats.index_hits == 1
    assert any(rec["id"] == 99999 for rec in r.value)
    r2 = db.query(POINT_Q)
    assert r2.stats.index_hits == 1
    assert r2.value == r.value


def test_inplace_mutation_invalidates(data_dir):
    db = _session(data_dir)
    db.query(POINT_Q)
    old = db.query(POINT_Q).value
    lines = (data_dir / "patients.csv").read_text().splitlines(True)
    lines[1] = "0,33,c0\n"  # row 0 now matches
    (data_dir / "patients.csv").write_text("".join(lines))
    _touch(data_dir / "patients.csv")
    r = db.query(POINT_Q)
    assert {rec["id"] for rec in r.value} == {rec["id"] for rec in old} | {0}


# ---------------------------------------------------------------------------
# stats plumbing + opt-out
# ---------------------------------------------------------------------------


def test_disabled_sessions_never_use_indexes(data_dir):
    db = _session(data_dir, indexed=False)
    db.query(POINT_Q)
    r = db.query(POINT_Q)
    assert r.stats.index_builds == 0
    assert r.stats.index_hits == 0
    assert "index" not in r.decisions.access.values()
    assert "access=index" not in r.plan_text
