"""ETL (flattening/loading), spec runner, and integration layer tests."""

import json

import pytest

from repro.warehouse import (
    ColStore,
    ColStoreAdapter,
    DocStore,
    DocStoreAdapter,
    Filter,
    IntegrationLayer,
    QuerySpec,
    RowStore,
    RowStoreAdapter,
    flatten_json_to_csv,
    load_csv_to_colstore,
    load_csv_to_rowstore,
    load_json_to_docstore,
    run_spec,
)
from repro.formats import CSVSource, write_csv


@pytest.fixture()
def nested_json(tmp_path):
    path = tmp_path / "n.json"
    with open(path, "w") as fh:
        for i in range(6):
            fh.write(json.dumps({
                "id": i,
                "meta": {"v": i % 2},
                "items": [{"name": f"n{j}", "qty": j} for j in range(3)],
            }) + "\n")
    return str(path)


def test_flatten_explodes_record_arrays(nested_json, tmp_path):
    out = tmp_path / "flat.csv"
    report = flatten_json_to_csv(nested_json, out)
    assert report.rows == 18  # 6 objects × 3 items — the paper's redundancy
    src = CSVSource(out)
    assert "meta.v" in src.columns
    assert "items.name" in src.columns
    rows = list(src.scan(["id", "items.qty"]))
    assert rows[:3] == [(0, 0), (0, 1), (0, 2)]


def test_flatten_object_without_arrays(tmp_path):
    path = tmp_path / "o.json"
    path.write_text(json.dumps({"a": 1, "b": {"c": 2}, "xs": [1, 2]}) + "\n")
    out = tmp_path / "o.csv"
    report = flatten_json_to_csv(str(path), out)
    assert report.rows == 1
    src = CSVSource(out)
    assert set(src.columns) == {"a", "b.c", "xs"}


def test_load_csv_to_stores(tmp_path):
    csv_path = tmp_path / "t.csv"
    write_csv(csv_path, ["id", "v"], [(i, i * 2) for i in range(50)])
    col = ColStore()
    rep1 = load_csv_to_colstore(col, "T", csv_path)
    assert rep1.rows == 50 and col.row_count("T") == 50
    row = RowStore(tmp_path / "heaps")
    rep2 = load_csv_to_rowstore(row, "T", csv_path)
    assert rep2.rows == 50 and row.row_count("T") == 50


def test_load_wide_csv_partitions(tmp_path):
    from repro.warehouse.rowstore import MAX_ATTRS

    ncols = MAX_ATTRS + 20
    cols = ["id"] + [f"c{i}" for i in range(ncols - 1)]
    csv_path = tmp_path / "wide.csv"
    write_csv(csv_path, cols, [tuple(r * 1000 + i for i in range(ncols))
                               for r in range(10)])
    store = RowStore(tmp_path / "heaps")
    load_csv_to_rowstore(store, "W", csv_path)
    assert store.tables["W"].partitions
    got = list(store.scan("W", ["id", f"c{ncols - 2}"]))
    assert got[1] == (1000, 1000 + ncols - 1)


def test_load_json_to_docstore(nested_json):
    store = DocStore()
    rep = load_json_to_docstore(store, "N", nested_json)
    assert rep.rows == 6
    assert "id" in store.collections["N"].indexes


# -- spec runner -----------------------------------------------------------


@pytest.fixture()
def loaded_stores(tmp_path):
    write_csv(tmp_path / "p.csv", ["id", "age"],
              [(i, 20 + i) for i in range(20)])
    write_csv(tmp_path / "g.csv", ["id", "snp"],
              [(i, i % 3) for i in range(20)])
    col = ColStore()
    load_csv_to_colstore(col, "P", tmp_path / "p.csv")
    load_csv_to_colstore(col, "G", tmp_path / "g.csv")
    return col


def test_run_spec_single_source(loaded_stores):
    spec = QuerySpec(
        sources=("P",),
        filters={"P": (Filter("age", ">", 30),)},
        project=(("P", "id", "id"),),
    )
    out = run_spec(spec, {"P": ColStoreAdapter(loaded_stores, "P")})
    assert [r["id"] for r in out] == list(range(11, 20))


def test_run_spec_join_and_aggregate(loaded_stores):
    spec = QuerySpec(
        sources=("P", "G"),
        filters={"G": (Filter("snp", "=", 1),)},
        project=(("P", "id", "id"), ("P", "age", "value")),
        aggregate=("avg", "value"),
    )
    out = run_spec(spec, {
        "P": ColStoreAdapter(loaded_stores, "P"),
        "G": ColStoreAdapter(loaded_stores, "G"),
    })
    ids = [i for i in range(20) if i % 3 == 1]
    assert out["avg"] == pytest.approx(sum(20 + i for i in ids) / len(ids))


def test_run_spec_distinct(loaded_stores):
    spec = QuerySpec(
        sources=("P",),
        project=(("P", "age", "age"),),
        distinct=True,
    )
    out = run_spec(spec, {"P": ColStoreAdapter(loaded_stores, "P")})
    assert len(out) == 20  # all distinct here
    spec2 = QuerySpec(sources=("P",), project=(), distinct=True)
    out2 = run_spec(spec2, {"P": ColStoreAdapter(loaded_stores, "P")})
    assert len(out2) == 1  # empty projection collapses


def test_adapters_filtered_fetch_equivalence(tmp_path, loaded_stores):
    """Native pushdown strategies must agree with the generic path."""
    row = RowStore(tmp_path / "heaps2")
    write_csv(tmp_path / "p2.csv", ["id", "age"], [(i, 20 + i) for i in range(20)])
    load_csv_to_rowstore(row, "P", tmp_path / "p2.csv")
    docs = DocStore()
    docs.create_collection("P")
    docs.insert_many("P", [{"id": i, "age": 20 + i} for i in range(20)])

    filters = [Filter("age", ">=", 25), Filter("age", "<", 35)]
    for adapter in (
        ColStoreAdapter(loaded_stores, "P"),
        RowStoreAdapter(row, "P"),
        DocStoreAdapter(docs, "P"),
    ):
        native = sorted(r["id"] for r in adapter.fetch_filtered(["id", "age"], filters))
        generic = sorted(
            r["id"] for r in adapter.fetch(["id", "age"])
            if all(f.matches(r) for f in filters)
        )
        assert native == generic == [5, 6, 7, 8, 9, 10, 11, 12, 13, 14]


def test_colstore_filtered_fetch_selection_vector_semantics():
    """ColStore pushdown follows the chunk selection-vector contract."""
    store = ColStore()
    store.create_table("P", ["id", "age", "name"], ["int", "int", "string"])
    store.insert_rows("P", [(i, 20 + i % 10, f"n{i}") for i in range(40)])
    adapter = ColStoreAdapter(store, "P")

    # empty selection short-circuits before projection columns are touched
    out = list(adapter.fetch_filtered(["id", "name"], [Filter("age", ">", 99)]))
    assert out == []

    # successive filters narrow one selection vector; survivors keep order
    out = list(adapter.fetch_filtered(
        ["id", "age"], [Filter("age", ">=", 25), Filter("id", "<", 20)]
    ))
    assert out == [{"id": i, "age": 20 + i % 10}
                   for i in range(20) if 20 + i % 10 >= 25]

    # no filters: every row, in storage order, no dense index fallback
    out = list(adapter.fetch_filtered(["id"], []))
    assert out == [{"id": i} for i in range(40)]


# -- integration layer -----------------------------------------------------


def test_integration_layer_mediates(loaded_stores, nested_json):
    docs = DocStore()
    load_json_to_docstore(docs, "N", nested_json)
    mediator = IntegrationLayer()
    mediator.register("P", ColStoreAdapter(loaded_stores, "P"), "colstore")
    mediator.register("N", DocStoreAdapter(docs, "N"), "mongo")
    spec = QuerySpec(
        sources=("P", "N"),
        filters={"N": (Filter("meta.v", "=", 1),)},
        project=(("P", "id", "id"), ("N", "meta.v", "v")),
        distinct=True,
    )
    out = mediator.query(spec)
    assert sorted(r["id"] for r in out) == [1, 3, 5]
    assert mediator.stats.records_converted > 0
    assert mediator.systems() == {"P": "colstore", "N": "mongo"}
