"""Row store, column store, and document store engine tests."""

import pytest

from repro.errors import WarehouseError
from repro.warehouse import MAX_ATTRS, ColStore, DocStore, RowStore


@pytest.fixture()
def rows():
    return [(i, f"name{i}", i * 1.5, i % 2 == 0) for i in range(100)]


COLS = ["id", "name", "score", "flag"]
TYPES = ["int", "string", "float", "bool"]


# -- row store -----------------------------------------------------------


def test_rowstore_roundtrip(tmp_path, rows):
    store = RowStore(tmp_path)
    store.create_table("t", COLS, TYPES)
    assert store.insert_rows("t", rows) == 100
    assert list(store.scan("t"))[:2] == rows[:2]
    assert store.row_count("t") == 100
    assert store.storage_bytes("t") > 0


def test_rowstore_projection_partial_decode(tmp_path, rows):
    store = RowStore(tmp_path)
    store.create_table("t", COLS, TYPES)
    store.insert_rows("t", rows)
    got = list(store.scan("t", ["score", "id"]))
    assert got[3] == (4.5, 3)


def test_rowstore_nulls(tmp_path):
    store = RowStore(tmp_path)
    store.create_table("t", ["a", "b"], ["int", "string"])
    store.insert_rows("t", [(None, "x"), (2, None)])
    assert list(store.scan("t")) == [(None, "x"), (2, None)]


def test_rowstore_attribute_limit(tmp_path):
    store = RowStore(tmp_path)
    cols = [f"c{i}" for i in range(MAX_ATTRS + 10)]
    with pytest.raises(WarehouseError):
        store.create_table("wide", cols, ["int"] * len(cols))


def test_rowstore_vertical_partitioning(tmp_path):
    store = RowStore(tmp_path)
    ncols = MAX_ATTRS + 50
    cols = ["id"] + [f"c{i}" for i in range(ncols - 1)]
    meta = store.create_partitioned("wide", cols, ["int"] * ncols)
    assert len(meta.partitions) == 2
    for part in meta.partitions:
        pmeta = store.tables[part]
        assert "id" in pmeta.columns
        assert len(pmeta.columns) <= MAX_ATTRS

    # load through the ETL-style per-partition insert
    for part in meta.partitions:
        pmeta = store.tables[part]
        idxs = [cols.index(c) for c in pmeta.columns]
        store.insert_rows(part, [
            tuple(r * 1000 + i for i in idxs) for r in range(5)
        ])
    got = list(store.scan("wide", ["id", "c0", f"c{ncols - 2}"]))
    assert got[2] == (2000, 2001, 2000 + ncols - 1)


def test_rowstore_drop_table(tmp_path, rows):
    store = RowStore(tmp_path)
    store.create_table("t", COLS, TYPES)
    store.insert_rows("t", rows)
    store.drop_table("t")
    with pytest.raises(WarehouseError):
        list(store.scan("t"))


def test_rowstore_unknown_column(tmp_path, rows):
    store = RowStore(tmp_path)
    store.create_table("t", COLS, TYPES)
    store.insert_rows("t", rows)
    with pytest.raises(WarehouseError):
        list(store.scan("t", ["nope"]))


# -- column store -----------------------------------------------------------


def test_colstore_roundtrip(rows):
    store = ColStore()
    store.create_table("t", COLS, TYPES)
    store.insert_rows("t", rows)
    assert list(store.scan("t"))[:2] == rows[:2]
    assert store.row_count("t") == 100


def test_colstore_dictionary_encoding(rows):
    store = ColStore()
    store.create_table("t", ["g"], ["string"])
    store.insert_rows("t", [("x",), ("y",), ("x",), (None,)])
    col = store.tables["t"].columns["g"]
    assert len(col.reverse) == 2  # two distinct strings
    assert store.column("t", "g") == ["x", "y", "x", None]


def test_colstore_projection(rows):
    store = ColStore()
    store.create_table("t", COLS, TYPES)
    store.insert_rows("t", rows)
    assert list(store.scan("t", ["flag"]))[1] == (False,)


def test_colstore_memory_accounting(rows):
    store = ColStore()
    store.create_table("t", COLS, TYPES)
    store.insert_rows("t", rows)
    assert store.storage_bytes("t") > 100 * 4 * 8 / 2


def test_colstore_duplicate_table():
    store = ColStore()
    store.create_table("t", ["a"], ["int"])
    with pytest.raises(WarehouseError):
        store.create_table("t", ["a"], ["int"])


# -- document store -----------------------------------------------------------


def test_docstore_roundtrip():
    store = DocStore()
    store.create_collection("c")
    docs = [{"id": i, "nested": {"v": i * 2}} for i in range(20)]
    assert store.insert_many("c", docs) == 20
    assert list(store.find("c"))[:2] == docs[:2]
    assert store.count("c") == 20


def test_docstore_space_amplification():
    """Power-of-two slots + BSON overhead ⇒ storage ≥ payload ≥ raw-ish."""
    store = DocStore()
    store.create_collection("c")
    docs = [{"id": i, "text": "x" * 40, "xs": list(range(8))} for i in range(50)]
    store.insert_many("c", docs)
    stats = store.stats("c")
    assert stats["storage_bytes"] >= stats["payload_bytes"]
    import json

    raw = sum(len(json.dumps(d)) for d in docs)
    assert stats["storage_bytes"] > raw  # the paper's 2x effect direction


def test_docstore_index_lookup():
    store = DocStore()
    store.create_collection("c")
    store.insert_many("c", [{"id": i, "k": i % 3} for i in range(30)])
    store.create_index("c", "k")
    hits = list(store.find("c", eq=("k", 1)))
    assert len(hits) == 10
    # index maintained on subsequent inserts
    store.insert_many("c", [{"id": 99, "k": 1}])
    assert len(list(store.find("c", eq=("k", 1)))) == 11


def test_docstore_find_predicate():
    store = DocStore()
    store.create_collection("c")
    store.insert_many("c", [{"id": i, "v": {"x": i}} for i in range(10)])
    out = list(store.find("c", predicate=lambda d: d["v"]["x"] > 7))
    assert [d["id"] for d in out] == [8, 9]


def test_docstore_iter_dicts_projection():
    store = DocStore()
    store.create_collection("c")
    store.insert_many("c", [{"id": 1, "a": {"b": 5}}])
    assert list(store.iter_dicts("c", ["a.b", "id"])) == [{"a.b": 5, "id": 1}]
