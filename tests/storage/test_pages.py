"""Slotted pages, heap files, and tuple encoding tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.pages import (
    PAGE_SIZE,
    HeapFile,
    SlottedPage,
    decode_tuple,
    encode_tuple,
)


def test_page_insert_and_read():
    page = SlottedPage()
    s0 = page.insert(b"hello")
    s1 = page.insert(b"world!")
    assert page.read(s0) == b"hello"
    assert page.read(s1) == b"world!"
    assert len(page) == 2


def test_page_full_returns_none():
    page = SlottedPage()
    payload = b"x" * 1000
    inserted = 0
    while page.insert(payload) is not None:
        inserted += 1
    assert inserted == (PAGE_SIZE - 4) // (1000 + 4)


def test_page_serialisation_roundtrip():
    page = SlottedPage()
    page.insert(b"abc")
    page.insert(b"defgh")
    restored = SlottedPage(bytearray(page.data))
    assert list(restored) == [b"abc", b"defgh"]


def test_page_slot_bounds():
    page = SlottedPage()
    page.insert(b"a")
    with pytest.raises(StorageError):
        page.read(5)


def test_heap_append_scan(tmp_path):
    heap = HeapFile(tmp_path / "t.heap")
    rids = [heap.append(f"tuple{i}".encode()) for i in range(500)]
    heap.flush()
    scanned = list(heap.scan())
    assert len(scanned) == 500
    assert scanned[0][1] == b"tuple0"
    assert heap.fetch(rids[123]) == b"tuple123"
    assert heap.page_count >= 1


def test_heap_rejects_oversized_tuple(tmp_path):
    heap = HeapFile(tmp_path / "t.heap")
    with pytest.raises(StorageError):
        heap.append(b"x" * PAGE_SIZE)


def test_heap_spills_to_multiple_pages(tmp_path):
    heap = HeapFile(tmp_path / "big.heap")
    for i in range(30):
        heap.append(b"y" * 1000)
    heap.flush()
    assert heap.page_count > 1
    assert len(list(heap.scan())) == 30


# -- tuple encoding -----------------------------------------------------------


def test_encode_decode_basic():
    types = ("int", "float", "string", "bool")
    values = (42, 3.25, "héllo", True)
    assert decode_tuple(encode_tuple(values, types), types) == values


def test_encode_decode_nulls():
    types = ("int", "string", "float")
    values = (None, None, 1.5)
    assert decode_tuple(encode_tuple(values, types), types) == values


def test_wide_tuple_null_bitmap():
    """> 32 columns exercises the extended null bitmap."""
    ncols = 70
    types = tuple(["int"] * ncols)
    values = tuple(None if i % 3 == 0 else i for i in range(ncols))
    assert decode_tuple(encode_tuple(values, types), types) == values


_col_types = st.sampled_from(["int", "float", "string", "bool"])


@st.composite
def _typed_rows(draw):
    types = tuple(draw(st.lists(_col_types, min_size=1, max_size=40)))
    values = []
    for t in types:
        if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
            values.append(None)
        elif t == "int":
            values.append(draw(st.integers(-(2**40), 2**40)))
        elif t == "float":
            values.append(draw(st.floats(allow_nan=False, allow_infinity=False)))
        elif t == "bool":
            values.append(draw(st.booleans()))
        else:
            values.append(draw(st.text(max_size=20)))
    return types, tuple(values)


@given(_typed_rows())
@settings(max_examples=80, deadline=None)
def test_tuple_roundtrip_property(case):
    types, values = case
    assert decode_tuple(encode_tuple(values, types), types) == values
