"""Simulated devices, tracked IO, and buffer pool tests."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    HDD,
    PCM,
    BufferPool,
    FileFingerprint,
    PlacementPlan,
    RawFile,
    StorageDevice,
)
from repro.storage.pages import HeapFile


def test_device_profiles_ordering():
    """Faster technologies must actually be faster in the model."""
    n = 10 << 20
    hdd = HDD.read_seconds(n, seeks=1)
    pcm = PCM.read_seconds(n, seeks=1)
    assert pcm < hdd


def test_device_accounting_sequential_vs_random():
    dev = StorageDevice("hdd")
    dev.read(4096)            # sequential
    assert dev.stats.read_seeks == 0
    dev.read(4096, offset=1 << 20)  # jump
    assert dev.stats.read_seeks == 1
    assert dev.stats.bytes_read == 8192
    assert dev.stats.simulated_seconds > 0


def test_device_random_write_penalty():
    flash = StorageDevice("flash")
    seq = flash.write(1 << 20)
    flash.reset()
    flash.write(0)  # establish position 0
    rnd = flash.write(1 << 20, offset=5 << 20)
    assert rnd > seq


def test_device_energy_positive():
    dev = StorageDevice("pcm")
    dev.read(1 << 20)
    assert dev.stats.energy_joules > 0


def test_unknown_profile():
    with pytest.raises(StorageError):
        StorageDevice("tape")


def test_placement_plan_dedups_devices():
    a = StorageDevice("hdd")
    b = StorageDevice("flash")
    plan = PlacementPlan(raw=a, posmap=b, cache=b, temp=b)
    a.read(1024)
    b.read(1024)
    assert plan.total_seconds() == a.stats.simulated_seconds + b.stats.simulated_seconds


# -- RawFile -----------------------------------------------------------


def test_rawfile_counts_bytes_and_seeks(tmp_path):
    p = tmp_path / "f.bin"
    p.write_bytes(b"0123456789" * 100)
    with RawFile(p) as raw:
        raw.read(10)
        raw.read_at(500, 10)
        assert raw.stats.bytes_read == 20
        assert raw.stats.seeks == 1
        assert raw.size == 1000


def test_rawfile_charges_device(tmp_path):
    p = tmp_path / "f.bin"
    p.write_bytes(b"x" * 1000)
    dev = StorageDevice("hdd")
    with RawFile(p, device=dev) as raw:
        raw.read(1000)
    assert dev.stats.bytes_read == 1000


def test_rawfile_iter_lines_offsets(tmp_path):
    p = tmp_path / "f.txt"
    p.write_bytes(b"aa\nbbb\n\ncccc")
    with RawFile(p) as raw:
        lines = list(raw.iter_lines(chunk_size=4))
    assert lines == [(0, b"aa"), (3, b"bbb"), (7, b""), (8, b"cccc")]


def test_fingerprint_detects_change(tmp_path):
    p = tmp_path / "f.txt"
    p.write_text("v1")
    fp = FileFingerprint.of(p)
    assert fp.matches(p)
    import os
    p.write_text("v2!")
    os.utime(p, ns=(1, 1))
    assert not fp.matches(p)
    assert not fp.matches(tmp_path / "missing.txt")


# -- buffer pool -----------------------------------------------------------


def test_buffer_pool_hits_and_evictions(tmp_path):
    heap = HeapFile(tmp_path / "t.heap")
    for i in range(40):
        heap.append(b"z" * 1500)  # ~5 per page → 8 pages
    heap.flush()
    pool = BufferPool(capacity_pages=2)
    list(pool.scan(heap))
    first_misses = pool.stats.misses
    assert first_misses == heap.page_count
    list(pool.scan(heap))
    # capacity 2 < page count → rescan misses again (thrash)
    assert pool.stats.misses > first_misses

    big = BufferPool(capacity_pages=64)
    list(big.scan(heap))
    list(big.scan(heap))
    assert big.stats.hits >= heap.page_count
    assert 0 < big.stats.hit_ratio < 1


def test_buffer_pool_invalidate(tmp_path):
    heap = HeapFile(tmp_path / "t.heap")
    heap.append(b"a")
    heap.flush()
    pool = BufferPool(4)
    pool.get(heap, 0)
    pool.invalidate(heap.path)
    pool.get(heap, 0)
    assert pool.stats.misses == 2


def test_buffer_pool_capacity_validation():
    with pytest.raises(ValueError):
        BufferPool(0)
