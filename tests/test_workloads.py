"""HBP workload generator + cross-system runner tests."""

import pytest

from repro.workloads import (
    BASELINES,
    HBPConfig,
    PAPER_TABLE2,
    generate_datasets,
    make_workload,
    normalize_result,
    run_baseline,
    run_vida,
)


@pytest.fixture(scope="module")
def datasets(tmp_path_factory):
    return generate_datasets(tmp_path_factory.mktemp("hbp"), HBPConfig.tiny())


@pytest.fixture(scope="module")
def queries():
    return make_workload(HBPConfig.tiny())


def test_generation_deterministic(tmp_path_factory, datasets):
    other = generate_datasets(tmp_path_factory.mktemp("hbp2"), HBPConfig.tiny())
    assert open(datasets.patients_csv).read() == open(other.patients_csv).read()
    assert open(datasets.brain_json).read() == open(other.brain_json).read()


def test_table2_shape(datasets):
    rows = datasets.table2_rows()
    assert [r["relation"] for r in rows] == [r["relation"] for r in PAPER_TABLE2]
    by_name = {r["relation"]: r for r in rows}
    cfg = datasets.config
    assert by_name["Patients"]["tuples"] == cfg.patients_rows
    assert by_name["Genetics"]["attributes"] == cfg.genetics_snps + 1
    assert all(r["bytes"] > 0 for r in rows)


def test_workload_structure(queries):
    cfg = HBPConfig.tiny()
    assert len(queries) == cfg.n_queries
    kinds = {q.kind for q in queries}
    assert kinds == {"epidemiological", "interactive"}
    hot_fraction = sum(q.hot for q in queries) / len(queries)
    assert hot_fraction >= 0.5  # locality model dominates
    for q in queries:
        assert "yield" in q.comprehension
        assert q.spec.sources[0] == "Patients"
        if q.kind == "interactive":
            assert 1 <= len(q.spec.project) <= 6
            assert q.spec.distinct


def test_workload_deterministic():
    a = make_workload(HBPConfig.tiny())
    b = make_workload(HBPConfig.tiny())
    assert [q.comprehension for q in a] == [q.comprehension for q in b]


def test_vida_runs_workload(datasets, queries):
    timing, db, results = run_vida(datasets, queries)
    assert len(results) == len(queries)
    assert timing.query_s > 0
    assert 0 <= timing.extra["cache_hit_ratio"] <= 1


@pytest.mark.parametrize("kind", BASELINES)
def test_baselines_match_vida(tmp_path_factory, datasets, queries, kind):
    """Every baseline configuration computes the same answers as ViDa."""
    _vt, _db, vida_results = run_vida(datasets, queries)
    workdir = str(tmp_path_factory.mktemp(f"wh_{kind.replace('+', '_')}"))
    _bt, base_results = run_baseline(kind, datasets, queries, workdir)
    for i, (a, b) in enumerate(zip(vida_results, base_results)):
        assert normalize_result(a) == normalize_result(b), (
            f"query {i} ({queries[i].kind}): {queries[i].comprehension}"
        )


def test_normalize_result_handles_shapes():
    assert normalize_result(3.0000001) == normalize_result(3.0000002)
    assert normalize_result([{"a": 1}, {"a": 2}]) == \
        normalize_result([{"a": 2}, {"a": 1}])
    assert normalize_result({"count": 5}) == 5


def test_unknown_baseline_rejected(datasets, queries, tmp_path):
    with pytest.raises(ValueError):
        run_baseline("duckdb", datasets, queries, str(tmp_path))
